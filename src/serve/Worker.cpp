//===- serve/Worker.cpp - Remote evaluation worker ------------------------===//

#include "serve/Worker.h"

#include "core/DeriveVariants.h"
#include "core/Search.h"
#include "obs/Log.h"
#include "serve/Client.h"
#include "serve/Server.h" // buildKernel / buildMachine
#include "transform/TransformError.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <thread>

using namespace eco;
using namespace eco::serve;

namespace {

/// Everything needed to evaluate points for one (kernel, machine, scale,
/// rep_n): the variants derived once (derivation order is stable, so
/// names match the daemon's) and one simulator instance reused across
/// batches.
struct KernelContext {
  MachineDesc Machine;
  std::vector<DerivedVariant> Variants;
  std::unique_ptr<SimEvalBackend> Backend;
};

/// Evaluates every point of \p Batch into \p CostsOut (one slot per
/// point; null = cannot evaluate — unknown variant/symbol or illegal
/// transform, which the daemon's local loop re-derives). \p BetweenPoints
/// runs after each point so the caller can heartbeat through long
/// batches.
void evaluateBatch(const Json &Batch,
                   std::map<std::string, KernelContext> &Kernels,
                   Json &CostsOut,
                   const std::function<void()> &BetweenPoints) {
  CostsOut = Json::array();
  const Json &Points = Batch.get("points");

  std::string Kernel = Batch.get("kernel").asString();
  std::string Machine = Batch.get("machine").asString();
  unsigned Scale = static_cast<unsigned>(Batch.get("scale").asInt(1));
  int64_t RepN = Batch.get("rep_n").asInt();
  std::string CtxKey = Kernel + "|" + Machine + "|" +
                       std::to_string(Scale) + "|" + std::to_string(RepN);
  auto It = Kernels.find(CtxKey);
  if (It == Kernels.end()) {
    LoopNest Nest;
    KernelContext KC;
    if (!buildKernel(Kernel, Nest) ||
        !buildMachine(Machine, Scale, KC.Machine)) {
      // Unresolvable batch: answer all-null rather than erroring, so the
      // daemon resolves the batch once instead of re-dispatching it.
      for (size_t I = 0; I < Points.size(); ++I)
        CostsOut.push(Json());
      return;
    }
    DeriveOptions D;
    D.setRepresentativeSize(RepN);
    KC.Variants = deriveVariants(Nest, KC.Machine, D);
    KC.Backend = std::make_unique<SimEvalBackend>(KC.Machine);
    It = Kernels.emplace(CtxKey, std::move(KC)).first;
  }
  KernelContext &KC = It->second;

  for (size_t I = 0; I < Points.size(); ++I) {
    const Json &P = Points.at(I);
    const std::string &Name = P.get("variant").asString();
    const DerivedVariant *V = nullptr;
    for (const DerivedVariant &Cand : KC.Variants)
      if (Cand.Spec.Name == Name) {
        V = &Cand;
        break;
      }
    if (!V) {
      CostsOut.push(Json());
      continue;
    }
    Env Config(V->Skeleton.Syms.size());
    bool Bad = false;
    for (const auto &[Sym, Value] : P.get("config").fields()) {
      SymbolId Id = V->Skeleton.Syms.lookup(Sym);
      if (Id < 0 || !Value.isNumber()) {
        Bad = true;
        break;
      }
      Config.set(Id, Value.asInt());
    }
    if (Bad) {
      CostsOut.push(Json());
      continue;
    }
    try {
      LoopNest Inst = V->instantiate(Config, KC.Machine);
      CostsOut.push(KC.Backend->evaluate(Inst, Config));
    } catch (const TransformError &) {
      CostsOut.push(Json()); // daemon-side loop re-derives the rejection
    }
    BetweenPoints();
  }
}

const char *valueOf(const std::string &Arg, const char *Key) {
  size_t Len = std::strlen(Key);
  if (Arg.compare(0, Len, Key) == 0)
    return Arg.c_str() + Len;
  return nullptr;
}

} // namespace

int eco::serve::runWorker(const WorkerOptions &Opts) {
  std::map<std::string, KernelContext> Kernels;
  std::unique_ptr<Client> C;
  uint64_t WorkerId = 0;
  int HeartbeatMs = 500;
  long BatchesSeen = 0;
  int Reconnects = 0;

  auto stopRequested = [&Opts] {
    return Opts.Stop && Opts.Stop->load(std::memory_order_relaxed);
  };

  auto connect = [&]() -> bool {
    while (!stopRequested()) {
      std::string Err;
      C = Opts.Port >= 0
              ? Client::connectTcp(Opts.Host, Opts.Port, &Err,
                                   Opts.TimeoutMs)
              : Client::connectUnix(Opts.Socket, &Err, Opts.TimeoutMs);
      if (C) {
        C->setRecvTimeout(Opts.TimeoutMs);
        return true;
      }
      if (++Reconnects > Opts.MaxReconnects) {
        ECO_LOG(Warn) << "worker: daemon unreachable after " << Reconnects
                      << " attempt(s): " << Err;
        return false;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Opts.ReconnectMs));
    }
    return false;
  };

  auto hello = [&]() -> bool {
    Json Req = Json::object();
    Req.set("op", "worker.hello");
    Req.set("name", Opts.Name);
    Json Resp;
    if (!C->roundTrip(Req, Resp) || !Resp.get("ok").asBool(false))
      return false;
    WorkerId = static_cast<uint64_t>(Resp.get("worker_id").asInt());
    HeartbeatMs =
        static_cast<int>(Resp.get("heartbeat_ms").asInt(HeartbeatMs));
    Reconnects = 0; // a completed registration resets the give-up budget
    ECO_LOG(Info) << "worker: registered as id " << WorkerId;
    return true;
  };

  for (;;) {
    if (stopRequested())
      return 0;
    if (!C || !C->alive()) {
      if (!connect())
        return stopRequested() ? 0 : 1;
      if (!hello()) {
        C.reset();
        continue; // retry (bounded by the reconnect budget)
      }
    }

    Json Req = Json::object();
    Req.set("op", "worker.poll");
    Req.set("worker_id", WorkerId);
    Req.set("wait_ms", static_cast<int64_t>(Opts.PollWaitMs));
    Json Resp;
    if (!C->roundTrip(Req, Resp)) {
      C.reset(); // daemon restarted or died: reconnect + re-hello
      continue;
    }
    if (!Resp.get("ok").asBool(false)) {
      // Evicted (heartbeat lapse, garbage strikes): re-register on the
      // same connection and start fresh.
      if (!hello())
        C.reset();
      continue;
    }
    if (!Resp.has("batch"))
      continue; // idle long-poll lap

    const Json &Batch = Resp.get("batch");
    ++BatchesSeen;
    bool ChaosNow =
        !Opts.Chaos.empty() && BatchesSeen > Opts.ChaosAfterBatches;

    if (ChaosNow && Opts.Chaos == "vanish") {
      // SIGKILL analogue for in-process tests: drop the connection with
      // the batch unacknowledged and exit.
      ECO_LOG(Warn) << "worker: chaos=vanish, dropping connection";
      C.reset();
      return 0;
    }
    if (ChaosNow && Opts.Chaos == "freeze") {
      // Hold the batch silently; the daemon's heartbeat reaper evicts
      // us and re-dispatches. Park until told to stop.
      ECO_LOG(Warn) << "worker: chaos=freeze, going silent";
      while (!stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return 0;
    }

    Json Costs;
    if (ChaosNow && Opts.Chaos == "garbage") {
      // Structurally invalid on purpose: wrong arity and a non-number.
      Costs = Json::array();
      Costs.push("not-a-cost");
    } else {
      auto LastBeat = std::chrono::steady_clock::now();
      auto beat = [&] {
        auto Now = std::chrono::steady_clock::now();
        if (Now - LastBeat < std::chrono::milliseconds(
                                 std::max(HeartbeatMs / 2, 1)))
          return;
        LastBeat = Now;
        Json HReq = Json::object();
        HReq.set("op", "worker.heartbeat");
        HReq.set("worker_id", WorkerId);
        Json HResp;
        C->roundTrip(HReq, HResp); // best effort; poll also refreshes
      };
      evaluateBatch(Batch, Kernels, Costs, beat);
    }

    Json RReq = Json::object();
    RReq.set("op", "worker.result");
    RReq.set("worker_id", WorkerId);
    RReq.set("batch_id", Batch.get("id").asInt());
    RReq.set("costs", std::move(Costs));
    Json RResp;
    if (!C->roundTrip(RReq, RResp)) {
      C.reset();
      continue;
    }
    if (Opts.MaxBatches >= 0 && BatchesSeen >= Opts.MaxBatches)
      return 0;
  }
}

int eco::serve::workerToolMain(const std::vector<std::string> &Args) {
  WorkerOptions Opts;
  for (const std::string &Arg : Args) {
    if (const char *V = valueOf(Arg, "--socket=")) {
      Opts.Socket = V;
    } else if (const char *V = valueOf(Arg, "--host=")) {
      Opts.Host = V;
    } else if (const char *V = valueOf(Arg, "--port=")) {
      Opts.Port = std::atoi(V);
    } else if (const char *V = valueOf(Arg, "--name=")) {
      Opts.Name = V;
    } else if (const char *V = valueOf(Arg, "--poll-ms=")) {
      Opts.PollWaitMs = std::atoi(V);
    } else if (const char *V = valueOf(Arg, "--timeout-ms=")) {
      Opts.TimeoutMs = std::atoi(V);
    } else if (const char *V = valueOf(Arg, "--max-batches=")) {
      Opts.MaxBatches = std::atol(V);
    } else if (const char *V = valueOf(Arg, "--chaos=")) {
      Opts.Chaos = V;
    } else if (const char *V = valueOf(Arg, "--chaos-after=")) {
      Opts.ChaosAfterBatches = std::atol(V);
    } else {
      std::fprintf(stderr,
                   "usage: eco_worker [--socket=PATH | --host=H --port=P] "
                   "[--name=S] [--poll-ms=MS] [--timeout-ms=MS] "
                   "[--max-batches=N] [--chaos=garbage|freeze|vanish] "
                   "[--chaos-after=N]\n");
      return 2;
    }
  }
  if (!Opts.Chaos.empty() && Opts.Chaos != "garbage" &&
      Opts.Chaos != "freeze" && Opts.Chaos != "vanish") {
    std::fprintf(stderr, "error: bad --chaos=%s\n", Opts.Chaos.c_str());
    return 2;
  }
  return runWorker(Opts);
}
