//===- serve/Fleet.cpp - Remote evaluation worker fleet -------------------===//

#include "serve/Fleet.h"

#include "obs/Event.h"
#include "obs/Log.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace eco;
using namespace eco::serve;

WorkerPool::WorkerPool(FleetOptions O) : Opts(O) {
  if (Opts.MaxAttempts < 1)
    Opts.MaxAttempts = 1;
  if (Opts.MaxPollWaitMs < 1)
    Opts.MaxPollWaitMs = 1;
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::publishWorkerGaugeLocked() const {
  M.assertHeld();
  if (obs::metricsEnabled())
    obs::metrics().gauge("serve.workers_live")
        .set(static_cast<double>(Workers.size()));
}

Json WorkerPool::hello(const Json &Req) {
  MutexLock Lock(M);
  Worker W;
  W.Id = NextWorkerId++;
  W.Name = Req.get("name").asString();
  if (W.Name.empty())
    W.Name = "worker-" + std::to_string(W.Id);
  W.LastSeen = Clock::now();
  uint64_t Id = W.Id;
  std::string Name = W.Name;
  Workers.emplace(Id, std::move(W));
  ++TotalJoined;
  publishWorkerGaugeLocked();
  if (obs::eventsEnabled()) {
    Json F = Json::object();
    F.set("worker_id", Id);
    F.set("name", Name);
    obs::publishEvent("worker.joined", std::move(F));
  }
  ECO_LOG(Info) << "fleet: worker " << Id << " ('" << Name << "') joined ("
                << Workers.size() << " live)";
  // A fresh worker may unblock queued batches waiting for a poller.
  WorkCV.notify_all();
  Json J = Json::object();
  J.set("ok", true);
  J.set("worker_id", Id);
  J.set("heartbeat_ms", static_cast<int64_t>(Opts.HeartbeatMs));
  return J;
}

void WorkerPool::evictLocked(uint64_t WorkerId, const std::string &Reason) {
  M.assertHeld();
  auto It = Workers.find(WorkerId);
  if (It == Workers.end())
    return;
  std::string Name = It->second.Name;
  Workers.erase(It);
  ++TotalLost;
  publishWorkerGaugeLocked();
  if (obs::eventsEnabled()) {
    Json F = Json::object();
    F.set("worker_id", WorkerId);
    F.set("name", Name);
    F.set("reason", Reason);
    obs::publishEvent("worker.lost", std::move(F));
  }
  ECO_LOG(Warn) << "fleet: worker " << WorkerId << " ('" << Name
                << "') lost (" << Reason << "); " << Workers.size()
                << " live";
  // Its in-flight batches go back in the queue (or fail out).
  std::vector<uint64_t> Orphans;
  for (auto &[Id, B] : Batches)
    if (B.State == BatchState::InFlight && B.AssignedTo == WorkerId)
      Orphans.push_back(Id);
  for (uint64_t Id : Orphans) {
    auto BIt = Batches.find(Id);
    if (BIt != Batches.end())
      requeueLocked(BIt->second, "worker-lost");
  }
}

void WorkerPool::requeueLocked(Batch &B, const std::string &Reason) {
  M.assertHeld();
  if (obs::eventsEnabled()) {
    Json F = Json::object();
    F.set("batch_id", B.Id);
    F.set("reason", Reason);
    F.set("attempts", static_cast<int64_t>(B.Attempts));
    obs::publishEvent("batch.redispatched", std::move(F));
  }
  if (B.Attempts >= Opts.MaxAttempts) {
    // Exhausted: the points stay uncached and the engine's decision
    // loop evaluates them locally — correctness never depends on the
    // fleet, only throughput does.
    ++TotalFailed;
    ECO_LOG(Warn) << "fleet: batch " << B.Id << " failed after "
                  << B.Attempts << " attempt(s) (" << Reason << ")";
    finishBatchLocked(B.Id);
    return;
  }
  ++TotalRetried;
  if (obs::metricsEnabled())
    obs::metrics().counter("serve.batches_retried").inc();
  int Shift = std::min(B.Attempts - 1, 20);
  int64_t BackoffMs = std::min<int64_t>(
      static_cast<int64_t>(Opts.BackoffBaseMs) << Shift, Opts.BackoffMaxMs);
  B.State = BatchState::Queued;
  B.AssignedTo = 0;
  B.NotBefore = Clock::now() + std::chrono::milliseconds(BackoffMs);
  ECO_LOG(Info) << "fleet: batch " << B.Id << " re-queued (" << Reason
                << ", attempt " << B.Attempts << ", backoff " << BackoffMs
                << " ms)";
  WorkCV.notify_all();
}

void WorkerPool::finishBatchLocked(uint64_t Id) {
  M.assertHeld();
  auto It = Batches.find(Id);
  if (It == Batches.end())
    return;
  auto GIt = GroupRemaining.find(It->second.Group);
  if (GIt != GroupRemaining.end() && GIt->second > 0)
    --GIt->second;
  Batches.erase(It);
  DoneCV.notify_all();
}

void WorkerPool::reapLocked(Clock::time_point Now) {
  M.assertHeld();
  std::vector<uint64_t> Stale;
  for (const auto &[Id, W] : Workers)
    if (Now - W.LastSeen > std::chrono::milliseconds(Opts.HeartbeatTimeoutMs))
      Stale.push_back(Id);
  for (uint64_t Id : Stale)
    evictLocked(Id, "heartbeat-timeout");

  std::vector<uint64_t> Stragglers;
  for (const auto &[Id, B] : Batches)
    if (B.State == BatchState::InFlight &&
        Now - B.DispatchedAt > std::chrono::milliseconds(Opts.BatchTimeoutMs))
      Stragglers.push_back(Id);
  for (uint64_t Id : Stragglers) {
    auto It = Batches.find(Id);
    if (It != Batches.end())
      requeueLocked(It->second, "straggler");
  }
}

Json WorkerPool::poll(const Json &Req) {
  uint64_t WorkerId = static_cast<uint64_t>(Req.get("worker_id").asInt());
  int64_t WaitMs = Req.get("wait_ms").asInt(0);
  WaitMs = std::max<int64_t>(
      0, std::min<int64_t>(WaitMs, Opts.MaxPollWaitMs));
  auto Deadline = Clock::now() + std::chrono::milliseconds(WaitMs);

  MutexLock Lock(M);
  for (;;) {
    auto WIt = Workers.find(WorkerId);
    if (WIt == Workers.end()) {
      Json J = Json::object();
      J.set("ok", false);
      J.set("error", "unknown worker"); // evicted — the worker re-hellos
      return J;
    }
    auto Now = Clock::now();
    WIt->second.LastSeen = Now; // a blocked poller is alive by definition

    if (!Stopping) {
      for (auto &[Id, B] : Batches) {
        (void)Id;
        if (B.State != BatchState::Queued || B.NotBefore > Now)
          continue;
        ++B.Attempts;
        B.State = BatchState::InFlight;
        B.AssignedTo = WorkerId;
        B.DispatchedAt = Now;
        Json J = Json::object();
        J.set("ok", true);
        J.set("batch", B.Payload);
        return J;
      }
    }

    if (Stopping || Now >= Deadline) {
      Json J = Json::object();
      J.set("ok", true);
      J.set("idle", true);
      return J;
    }
    // Lap at most 50 ms so a backoff gate (NotBefore in the future)
    // opens promptly even without a notification.
    auto Lap = std::min(Deadline - Now,
                        Clock::duration(std::chrono::milliseconds(50)));
    WorkCV.wait_for(Lock, Lap);
  }
}

Json WorkerPool::result(const Json &Req) {
  uint64_t WorkerId = static_cast<uint64_t>(Req.get("worker_id").asInt());
  uint64_t BatchId = static_cast<uint64_t>(Req.get("batch_id").asInt());
  const Json &Costs = Req.get("costs");

  MutexLock Lock(M);
  auto WIt = Workers.find(WorkerId);
  if (WIt == Workers.end()) {
    Json J = Json::object();
    J.set("ok", false);
    J.set("error", "unknown worker");
    return J;
  }
  WIt->second.LastSeen = Clock::now();

  auto BIt = Batches.find(BatchId);
  if (BIt == Batches.end()) {
    // Already resolved (a re-dispatched copy finished first, or the
    // batch failed out). The duplicate is expected under re-dispatch —
    // acknowledge it so the worker moves on.
    Json J = Json::object();
    J.set("ok", true);
    J.set("stale", true);
    return J;
  }
  Batch &B = BIt->second;

  // Structural validation: one cost slot per point, each null (the
  // worker hit an illegal transform / unknown binding — the local loop
  // re-derives that rejection deterministically) or a finite number.
  // Anything else is a protocol violation: never insert, strike the
  // sender, re-dispatch the batch.
  bool Valid = Costs.isArray() && Costs.size() == B.Points.size();
  if (Valid)
    for (size_t I = 0; I < Costs.size(); ++I) {
      const Json &C = Costs.at(I);
      if (!C.isNull() && (!C.isNumber() || !std::isfinite(C.asNumber())))
        Valid = false;
    }
  if (!Valid) {
    // Re-queue only a batch still in flight on THIS worker: a
    // superseded sender (the batch straggled and was re-dispatched to a
    // healthy worker) just takes the strike. Order matters — the
    // requeue can erase B outright (attempts exhausted ->
    // finishBatchLocked), so it must precede evictLocked, whose orphan
    // sweep then finds the batch already resolved or Queued and leaves
    // it alone.
    if (B.State == BatchState::InFlight && B.AssignedTo == WorkerId)
      requeueLocked(B, "garbage-result");
    if (++WIt->second.Strikes >= Opts.MaxStrikes)
      evictLocked(WorkerId, "garbage-result");
    Json J = Json::object();
    J.set("ok", false);
    J.set("error", "malformed result");
    return J;
  }
  // A structurally valid result clears the strike count: strikes gauge
  // persistent misbehavior, not an honest worker's lifetime total.
  WIt->second.Strikes = 0;

  for (size_t I = 0; I < Costs.size(); ++I)
    if (!Costs.at(I).isNull())
      // Idempotent: the sim cost is deterministic, so a duplicate or
      // late completion overwrites an entry with the identical value.
      B.Cache->insert(B.Points[I].Key, Costs.at(I).asNumber());
  ++TotalCompleted;
  finishBatchLocked(BatchId);
  Json J = Json::object();
  J.set("ok", true);
  return J;
}

Json WorkerPool::heartbeat(const Json &Req) {
  uint64_t WorkerId = static_cast<uint64_t>(Req.get("worker_id").asInt());
  MutexLock Lock(M);
  auto WIt = Workers.find(WorkerId);
  Json J = Json::object();
  if (WIt == Workers.end()) {
    J.set("ok", false);
    J.set("error", "unknown worker");
    return J;
  }
  WIt->second.LastSeen = Clock::now();
  J.set("ok", true);
  return J;
}

void WorkerPool::disconnected(uint64_t WorkerId) {
  MutexLock Lock(M);
  evictLocked(WorkerId, "disconnected");
}

size_t WorkerPool::liveWorkers() const {
  MutexLock Lock(M);
  return Workers.size();
}

void WorkerPool::evalBatch(const BatchContext &Ctx,
                           const std::vector<RemotePoint> &Points,
                           const std::string &Stage, EvalCache &Cache) {
  if (Points.empty())
    return;

  uint64_t Group;
  {
    MutexLock Lock(M);
    if (Stopping || Workers.empty())
      return; // no fleet — the caller's local path covers everything

    size_t Shards = std::min(Workers.size(), Points.size());
    Group = NextGroupId++;
    size_t Base = Points.size() / Shards, Extra = Points.size() % Shards;
    size_t Off = 0;
    auto Now = Clock::now();
    for (size_t S = 0; S < Shards; ++S) {
      size_t Count = Base + (S < Extra ? 1 : 0);
      Batch B;
      B.Id = NextBatchId++;
      B.Points.assign(Points.begin() + Off, Points.begin() + Off + Count);
      Off += Count;
      B.Cache = &Cache;
      B.Group = Group;
      B.NotBefore = Now;
      Json P = Json::object();
      P.set("id", B.Id);
      P.set("kernel", Ctx.Kernel);
      P.set("machine", Ctx.Machine);
      P.set("scale", static_cast<int64_t>(Ctx.Scale));
      P.set("rep_n", Ctx.RepSize);
      P.set("stage", Stage);
      Json Pts = Json::array();
      for (const RemotePoint &RP : B.Points) {
        Json O = Json::object();
        O.set("variant", RP.Variant);
        Json C = Json::object();
        for (const auto &[Name, Value] : RP.Config)
          C.set(Name, Value);
        O.set("config", std::move(C));
        Pts.push(std::move(O));
      }
      P.set("points", std::move(Pts));
      B.Payload = std::move(P);
      uint64_t Id = B.Id;
      Batches.emplace(Id, std::move(B));
    }
    GroupRemaining[Group] = Shards;
    TotalDispatched += Shards;
    ECO_LOG(Debug) << "fleet: dispatching " << Points.size()
                   << " point(s) as " << Shards << " batch(es) across "
                   << Workers.size() << " worker(s) [" << Stage << "]";
  }
  WorkCV.notify_all();

  MutexLock Lock(M);
  for (;;) {
    auto GIt = GroupRemaining.find(Group);
    if (GIt == GroupRemaining.end() || GIt->second == 0)
      break;
    if (Stopping || Workers.empty()) {
      // Fleet gone: fail this group's remaining batches right now so
      // the tune falls back to local evaluation instead of waiting out
      // timeouts that no worker will ever beat.
      std::vector<uint64_t> Remaining;
      for (const auto &[Id, B] : Batches)
        if (B.Group == Group)
          Remaining.push_back(Id);
      for (uint64_t Id : Remaining) {
        ++TotalFailed;
        finishBatchLocked(Id);
      }
      break;
    }
    DoneCV.wait_for(Lock, std::chrono::milliseconds(50));
    reapLocked(Clock::now());
  }
  GroupRemaining.erase(Group);
}

void WorkerPool::shutdown() {
  MutexLock Lock(M);
  Stopping = true;
  std::vector<uint64_t> Remaining;
  for (const auto &[Id, B] : Batches) {
    (void)B;
    Remaining.push_back(Id);
  }
  for (uint64_t Id : Remaining) {
    ++TotalFailed;
    finishBatchLocked(Id);
  }
  WorkCV.notify_all();
  DoneCV.notify_all();
}

Json WorkerPool::statsJson() const {
  MutexLock Lock(M);
  Json J = Json::object();
  J.set("workers_live", static_cast<int64_t>(Workers.size()));
  J.set("joined", TotalJoined);
  J.set("lost", TotalLost);
  J.set("batches_dispatched", TotalDispatched);
  J.set("batches_retried", TotalRetried);
  J.set("batches_failed", TotalFailed);
  J.set("batches_completed", TotalCompleted);
  J.set("batches_outstanding", static_cast<int64_t>(Batches.size()));
  return J;
}
