//===- serve/Tool.h - Daemon / submit command-line entries -----*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve subsystem's command-line faces, shared between the
/// standalone `eco_served` binary and the `eco_cli serve` / `eco_cli
/// submit` subcommands so both spellings behave identically.
///
///   serveToolMain  — runs the daemon: bind sockets, loop until SIGTERM/
///                    SIGINT or a client "shutdown" request, then stop
///                    the listeners, drain admitted jobs, and persist
///                    the ConfigDB atomically.
///   submitToolMain — one client request (submit by default; --op
///                    switches to query/stats/ping/shutdown) printed as
///                    JSON on stdout.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SERVE_TOOL_H
#define ECO_SERVE_TOOL_H

#include <string>
#include <vector>

namespace eco {
namespace serve {

/// `eco_served [flags]` / `eco_cli serve [flags]`:
///   --socket=PATH     unix socket (default eco_serve.sock)
///   --tcp=PORT        also listen on 127.0.0.1:PORT (0 = ephemeral)
///   --db=FILE         ConfigDB persistence (default eco_tuned.json)
///   --workers=N       concurrent tuning jobs (default 1)
///   --queue=N         queue capacity (default 16)
///   --engine-jobs=N   EvalEngine lanes per job (default 1)
///   --metrics-file=F  dump the metrics registry on exit
///   --log-level=LVL   off|error|warn|info|debug (default info)
/// Returns the process exit code.
int serveToolMain(const std::vector<std::string> &Args);

/// `eco_cli submit [flags]`:
///   --socket=PATH / --host=H --port=P   how to reach the daemon
///   --timeout-ms=MS   connect + response timeout (default: 10 s
///                     connect, 5 min response — a submit blocks for a
///                     whole tune)
///   --op=submit|query|stats|ping|shutdown (default submit)
///   --kernel=K --machine=M --scale=S --n=N
///   --priority=P --deadline-ms=MS --force
/// Prints the response JSON; exit 0 on ok responses.
int submitToolMain(const std::vector<std::string> &Args);

} // namespace serve
} // namespace eco

#endif // ECO_SERVE_TOOL_H
