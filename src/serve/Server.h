//===- serve/Server.h - Tuning-as-a-service daemon core --------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve subsystem's two halves:
///
///  * TuneService — the scheduler. A bounded priority queue of tuning
///    jobs drains into a worker pool; each worker builds the requested
///    kernel + machine, consults the ConfigDB (exact hit -> answer with
///    zero evaluations; nearest hit -> warm-start the search through
///    SearchOptions::WarmStartConfig), and runs the regular two-phase
///    tune through an EvalEngine. All workers' engines memoize into one
///    shared EvalCache, so concurrent jobs reuse each other's
///    evaluations. Deadlines and shutdown cancel cooperatively through
///    TuneOptions::ShouldStop — a cancelled tune returns its best-so-far
///    but is not stored. Backpressure is explicit: submitting to a full
///    queue (or a draining service) resolves immediately with
///    status "rejected", never blocks.
///
///  * Server — the wire front end. Listens on a unix-domain socket
///    and/or a TCP port, one thread per connection, speaking the
///    line-delimited JSON protocol (serve/Protocol.h). A "shutdown"
///    request flips a flag the daemon's main loop watches; the daemon
///    then stops the listeners and drains the service. The "metrics"
///    (Prometheus text of the obs registry) and "jobs" (live per-job
///    state) verbs answer from in-memory state without touching the
///    scheduler's queue lock for longer than a snapshot, so a scrape
///    mid-tune stays cheap.
///
/// Serving is simulator-only by design: the simulated cost is a pure
/// function of (kernel, machine, config), which is what makes stored
/// results bitwise replayable (check/DbAudit) and cache sharing sound.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SERVE_SERVER_H
#define ECO_SERVE_SERVER_H

#include "engine/EvalCache.h"
#include "serve/ConfigDB.h"
#include "serve/Fleet.h"
#include "serve/Protocol.h"
#include "support/Sync.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace eco {
namespace serve {

/// One submitted job: the spec, its place in time, and a promise-like
/// completion slot the submitting connection blocks on.
class ServeJob {
public:
  ServeJob(uint64_t Id, JobSpec Spec) : Id(Id), Spec(std::move(Spec)) {}

  const uint64_t Id;
  const JobSpec Spec;
  /// Stamped by TuneService::submit.
  std::chrono::steady_clock::time_point SubmitTime;
  /// SubmitTime + DeadlineMs; only meaningful when Spec.DeadlineMs > 0.
  std::chrono::steady_clock::time_point Deadline;

  // Live-introspection state (the "jobs" protocol verb). Written by the
  // scheduler / the running tune, read concurrently by jobsJson().
  /// obs::monotonicMicros() at submission (spans + events timeline).
  uint64_t SubmitUs = 0;
  /// obs::monotonicMicros() when a worker picked the job up (0 = queued).
  std::atomic<uint64_t> StartUs{0};
  /// Progress ticks: the tune's ShouldStop hook is polled once per
  /// candidate evaluation, so this approximates evaluations done.
  std::atomic<uint64_t> Ticks{0};
  /// Evaluation-count estimate (the warm-seed's recorded evaluations);
  /// 0 when there is no basis for an ETA.
  std::atomic<uint64_t> ExpectedTicks{0};

  /// Requests cooperative cancellation; the running tune notices at its
  /// next evaluation and returns best-so-far.
  void cancel() { Cancelled.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

  /// True once the job resolved (done/rejected/expired/cancelled/failed).
  bool done() const;
  /// Blocks until the job resolves; returns the result.
  JobResult wait();
  /// Resolves the job (exactly once) and wakes waiters.
  void finish(JobResult R);

private:
  /// mutable so const snapshots (done()) lock without a const_cast.
  mutable Mutex M{"serve.job"};
  CondVar CV;
  bool Finished ECO_GUARDED_BY(M) = false;
  JobResult Result ECO_GUARDED_BY(M);
  std::atomic<bool> Cancelled{false};
};

/// TuneService construction knobs.
struct ServiceOptions {
  /// ConfigDB persistence path; empty = in-memory DB.
  std::string DbPath;
  /// Worker threads draining the queue (concurrent tunes).
  int Workers = 1;
  /// Jobs admitted but not yet running; submit() past this rejects.
  size_t QueueCapacity = 16;
  /// EvalEngine lanes per worker (per-job tune parallelism).
  int EngineJobs = 1;
  /// Warm-start window: stage bounds clamp to [seed/F, seed*F] around
  /// the seeded configuration (SearchOptions::WarmStartBoundFactor).
  int WarmStartBoundFactor = 4;
  /// Model-pruning width for warm-started searches. The seed already
  /// encodes which variant family won nearby, so warm tunes search
  /// fewer variants than cold ones — the larger half of the eval-count
  /// saving the acceptance bench measures.
  unsigned WarmVariantsToSearch = 1;
  /// Model-pruning width for cold searches (TuneOptions default).
  unsigned ColdVariantsToSearch = 4;
  /// Test-only gate, called by a worker after popping a job and before
  /// any tuning work. Tests block in it to hold workers busy, making
  /// queue-full and cancellation scenarios deterministic.
  std::function<void(const JobSpec &)> TestGate;
  /// Remote worker fleet dispatch knobs (serve/Fleet.h). The fleet is
  /// always constructed; with no registered workers it costs nothing
  /// (the engine's RemoteWarmGate skips batch export entirely).
  FleetOptions Fleet;
};

/// The tuning scheduler: bounded priority queue + worker pool + ConfigDB.
class TuneService {
public:
  explicit TuneService(ServiceOptions Opts = {});
  /// Drains (waits for queued + running jobs) and persists the DB.
  ~TuneService();

  /// Enqueues \p Spec. Always returns a job; when the queue is full or
  /// the service is draining the job is already resolved with
  /// status "rejected" (explicit backpressure, no blocking). Higher
  /// Priority pops first; FIFO within a priority.
  std::shared_ptr<ServeJob> submit(const JobSpec &Spec);

  /// Convenience: submit and block until resolution.
  JobResult run(const JobSpec &Spec) { return submit(Spec)->wait(); }

  ConfigDB &db() { return Db; }

  /// The remote evaluation worker fleet (wire verbs + dispatch). Warm
  /// batches shard across its registered workers; see serve/Fleet.h.
  WorkerPool &workers() { return *Pool; }

  /// Jobs admitted but not yet popped by a worker.
  size_t queueDepth() const;
  /// Jobs currently executing.
  size_t numRunning() const;

  /// Lifetime counters + queue state as a JSON object (the "stats" op).
  Json statsJson() const;

  /// Live per-job state (the "jobs" op): every queued or running job
  /// with queue wait, phase, progress ticks, and — when a warm seed
  /// supplied an evaluation-count estimate — a naive ETA.
  Json jobsJson() const;

  /// Stops accepting new jobs, waits for the queue to empty and every
  /// running job to finish, joins the workers, and saves the DB. Jobs
  /// already admitted run to completion (graceful SIGTERM semantics);
  /// call cancelQueued() first for a faster exit.
  void drain();

  /// Cancels every queued (not yet running) job with status
  /// "cancelled". Running jobs are unaffected.
  size_t cancelQueued();

private:
  void workerLoop();
  void execute(ServeJob &Job);
  /// Resolves \p Job, bumps the status counter, records latency metrics.
  void finishJob(ServeJob &Job, JobResult R);

  ServiceOptions Opts;
  ConfigDB Db;
  std::shared_ptr<EvalCache> SharedCache;
  std::unique_ptr<WorkerPool> Pool;

  mutable Mutex QM{"serve.queue"};
  CondVar QCV;    ///< workers wait: queue non-empty | stop
  CondVar DrainCV;///< drain waits: queue empty & idle
  /// {-Priority, Seq} -> job: begin() is the highest priority, oldest.
  std::map<std::pair<int, uint64_t>, std::shared_ptr<ServeJob>> Queue
      ECO_GUARDED_BY(QM);
  uint64_t NextSeq ECO_GUARDED_BY(QM) = 0;
  uint64_t NextJobId ECO_GUARDED_BY(QM) = 1;
  size_t Running ECO_GUARDED_BY(QM) = 0;
  bool Draining ECO_GUARDED_BY(QM) = false;

  std::vector<std::thread> Workers;

  // Lifetime accounting (also mirrored into obs metrics when enabled).
  mutable Mutex SM{"serve.stats"};
  /// By JobResult::Status.
  std::map<std::string, uint64_t> StatusCounts ECO_GUARDED_BY(SM);
  /// exact/nearest/cold.
  std::map<std::string, uint64_t> WarmCounts ECO_GUARDED_BY(SM);
  uint64_t Submitted ECO_GUARDED_BY(SM) = 0;
  /// Queued + running jobs, for jobsJson(). weak_ptr: introspection
  /// must never extend a job's lifetime past its waiter.
  std::map<uint64_t, std::weak_ptr<ServeJob>> Live ECO_GUARDED_BY(SM);
};

// Forward-declared here so Server.cpp owns the POSIX socket details.
class Listener;

/// Server construction knobs.
struct ServerOptions {
  /// Unix-domain socket path; empty = no unix listener.
  std::string UnixPath;
  /// TCP port; -1 = no TCP listener, 0 = bind an ephemeral port
  /// (query it back with Server::port()).
  int TcpPort = -1;
  std::string TcpHost = "127.0.0.1";
};

/// Socket front end over a TuneService.
class Server {
public:
  Server(TuneService &Service, ServerOptions Opts);
  ~Server();

  /// Binds and starts the accept loops. False + \p Error when no
  /// listener could be created.
  bool start(std::string *Error = nullptr);

  /// Closes listeners, disconnects clients, joins every thread.
  /// Idempotent. Does NOT drain the service — the daemon does that
  /// after stop() so in-flight jobs still resolve.
  void stop();

  /// The TCP port actually bound (-1 without a TCP listener).
  int port() const { return BoundPort; }
  const std::string &unixPath() const { return Opts.UnixPath; }

  /// A client sent {"op":"shutdown"}.
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_relaxed);
  }

  /// Connection entries still tracked (live handlers plus finished ones
  /// not yet reaped by the next accept). Tests pin down that a
  /// long-running daemon does not accumulate one zombie thread per
  /// served connection.
  size_t liveConnections() const ECO_EXCLUDES(ConnMutex);

private:
  /// One served connection. The handler thread owns Fd; Done flips
  /// under ConnMutex when the handler is about to return, making the
  /// thread joinable without blocking. std::list keeps entry addresses
  /// stable while handlers hold references to their own entries.
  struct Conn {
    int Fd = -1;       ///< -1 once the handler closed it
    bool Done = false; ///< handler finished; safe to join + erase
    std::thread T;
  };

  void acceptLoop(Listener *L);
  void handleConnection(int Fd, Conn &C);
  /// One request -> one response object. \p ConnWorkerId is the fleet
  /// worker registered on this connection (0 = none): worker.hello sets
  /// it, and handleConnection evicts it when the connection dies — the
  /// instant-detection path for a SIGKILLed worker.
  Json handleRequest(const Json &Request, uint64_t &ConnWorkerId);

  TuneService &Service;
  ServerOptions Opts;
  int BoundPort = -1;
  std::vector<std::unique_ptr<Listener>> Listeners;
  std::vector<std::thread> AcceptThreads;

  mutable Mutex ConnMutex{"serve.conns"};
  std::list<Conn> Conns ECO_GUARDED_BY(ConnMutex);
  bool Stopping ECO_GUARDED_BY(ConnMutex) = false;

  std::atomic<bool> ShutdownFlag{false};
};

/// Builds the kernel nest / machine a JobSpec names. Shared by the
/// service and check/DbAudit so both resolve specs identically.
/// Returns false on an unknown name (submit validation normally
/// prevents this).
bool buildKernel(const std::string &Kernel, LoopNest &Nest);
bool buildMachine(const std::string &Machine, unsigned Scale,
                  MachineDesc &Out);

} // namespace serve
} // namespace eco

#endif // ECO_SERVE_SERVER_H
