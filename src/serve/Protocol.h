//===- serve/Protocol.h - Line-delimited JSON wire protocol ----*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuning service's wire protocol: one JSON object per line, in both
/// directions, over a unix-domain or TCP stream. Requests:
///
///   {"op":"ping"}
///   {"op":"submit","kernel":"matmul","machine":"sgi","scale":16,
///    "n":96,"priority":2,"deadline_ms":60000,"force":false}
///   {"op":"query","kernel":"matmul","machine":"sgi","scale":16,"n":96}
///   {"op":"stats"}
///   {"op":"jobs"}     — live per-job state: phase, queue wait, progress
///   {"op":"metrics"}  — Prometheus text of the obs registry, in "body"
///   {"op":"shutdown"}
///
/// submit blocks the connection until the job resolves (the scheduler
/// decides when it runs); query is a pure ConfigDB probe that never
/// tunes. Every response carries "ok"; failures add "error". A resolved
/// job's response:
///
///   {"ok":true,"status":"done","warm_start":"exact|nearest|cold",
///    "cost":...,"variant":"v2","config":{"N":96,"TI":32,...},
///    "evaluations":41,"cache_hits":7,"queue_ms":0.2,"run_ms":1830.5}
///
/// status is one of done | rejected | expired | cancelled | failed.
/// Rejections (queue full, draining) are explicit and immediate — the
/// server never hangs a client on backpressure.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SERVE_PROTOCOL_H
#define ECO_SERVE_PROTOCOL_H

#include "serve/ConfigDB.h"
#include "support/Json.h"

#include <string>

namespace eco {
namespace serve {

/// What a client asks the service to tune.
struct JobSpec {
  std::string Kernel = "matmul";  ///< matmul | jacobi | matvec
  std::string Machine = "sgi";    ///< sgi | sun | host
  unsigned Scale = 16;            ///< preset scaling (ignored for host)
  int64_t N = 96;                 ///< problem size
  int Priority = 0;               ///< higher runs first; FIFO within
  int64_t DeadlineMs = 0;         ///< 0 = none; measured from submission
  bool ForceRetune = false;       ///< skip the exact-hit DB shortcut

  /// "matmul@sgi/16 n=96" — log/span label.
  std::string summary() const;
};

/// How a job resolved.
struct JobResult {
  std::string Status = "failed";  ///< done|rejected|expired|cancelled|failed
  std::string Error;              ///< set when Status != done
  std::string WarmStart;          ///< exact | nearest | cold
  double Cost = 0;
  std::string Variant;
  ParamBindings Config;
  uint64_t Evaluations = 0;       ///< backend evaluations this job spent
  uint64_t CacheHits = 0;
  double QueueMs = 0;             ///< submission -> execution start
  double RunMs = 0;               ///< execution wall time

  bool ok() const { return Status == "done"; }
};

/// JobSpec <-> {"op":"submit", ...} (op left to the caller).
Json toJson(const JobSpec &Spec);
/// Fills \p Spec from \p J; false + \p Error on a malformed request.
bool jobSpecFromJson(const Json &J, JobSpec &Spec, std::string *Error);

/// JobResult <-> response object (adds "ok" from Status).
Json toJson(const JobResult &R);
JobResult jobResultFromJson(const Json &J);

/// Response for a ConfigDB query hit ("status":"hit") — reuses the
/// JobResult shape with Evaluations = 0.
Json queryHitToJson(const TunedEntry &E);

} // namespace serve
} // namespace eco

#endif // ECO_SERVE_PROTOCOL_H
