//===- serve/ConfigDB.cpp - Persistent tuned-config database --------------===//

#include "serve/ConfigDB.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <cmath>
#include <fstream>

using namespace eco;
using namespace eco::serve;

std::string ConfigDB::keyOf(const std::string &Kernel,
                            uint64_t MachineHash, int64_t N) {
  return Kernel + "-" + hashHex(MachineHash) + "-n" + std::to_string(N);
}

ConfigDB::ConfigDB(std::string Path) : PersistPath(std::move(Path)) {
  if (!PersistPath.empty())
    load(PersistPath);
}

std::optional<TunedEntry> ConfigDB::exact(const std::string &Kernel,
                                          uint64_t MachineHash,
                                          int64_t N) const {
  MutexLock Lock(M);
  auto It = Entries.find(keyOf(Kernel, MachineHash, N));
  if (It == Entries.end())
    return std::nullopt;
  return It->second;
}

std::optional<TunedEntry> ConfigDB::nearest(const std::string &Kernel,
                                            uint64_t MachineHash,
                                            int64_t N) const {
  MutexLock Lock(M);
  const TunedEntry *Best = nullptr;
  double BestDist = 0;
  for (const auto &[Key, E] : Entries) {
    (void)Key;
    if (E.Kernel != Kernel || E.MachineHash != MachineHash || E.N <= 0 ||
        N <= 0)
      continue;
    // Log-space distance: tile footprints scale multiplicatively with
    // the problem size, so 64 is as close to 128 as 128 is to 256.
    double Dist = std::fabs(std::log(static_cast<double>(E.N)) -
                            std::log(static_cast<double>(N)));
    // Equidistant seeds (N=64 vs N=256 for a query at 128) tie-break to
    // the smaller N explicitly. Without this the winner depended on the
    // lexicographic key order of the entries map ("128" < "32"), which
    // made warm starts — and therefore evaluation counts — flip with
    // unrelated DB contents.
    if (!Best || Dist < BestDist ||
        (Dist == BestDist && E.N < Best->N)) {
      Best = &E;
      BestDist = Dist;
    }
  }
  if (!Best)
    return std::nullopt;
  return *Best;
}

bool ConfigDB::put(const TunedEntry &E) {
  MutexLock Lock(M);
  std::string Key = keyOf(E.Kernel, E.MachineHash, E.N);
  auto It = Entries.find(Key);
  if (It != Entries.end() && It->second.BestCost < E.BestCost)
    return false; // keep the better stored result
  Entries[Key] = E;
  return true;
}

size_t ConfigDB::size() const {
  MutexLock Lock(M);
  return Entries.size();
}

void ConfigDB::forEach(
    const std::function<void(const TunedEntry &)> &Fn) const {
  MutexLock Lock(M);
  for (const auto &[Key, E] : Entries) {
    (void)Key;
    Fn(E);
  }
}

bool ConfigDB::save() const {
  if (PersistPath.empty())
    return true;
  return save(PersistPath);
}

bool ConfigDB::save(const std::string &Path) const {
  Json List = Json::array();
  {
    MutexLock Lock(M);
    for (const auto &[Key, E] : Entries) {
      (void)Key;
      Json Config = Json::object();
      for (const auto &[Name, Value] : E.Config)
        Config.set(Name, Value);
      Json Row = Json::object();
      Row.set("kernel", E.Kernel);
      Row.set("machineName", E.MachineName);
      Row.set("scale", static_cast<int64_t>(E.Scale));
      Row.set("machine", hashHex(E.MachineHash));
      Row.set("n", E.N);
      Row.set("variant", E.Variant);
      Row.set("config", std::move(Config));
      Row.set("cost", E.BestCost);
      Row.set("evaluations", E.Evaluations);
      Row.set("seconds", E.Seconds);
      Row.set("warmStart", E.WarmStart);
      // Compact provenance blob: the tune's pruning ledger + winner
      // lineage. Written unconditionally so every new row explains
      // itself; absent in legacy rows, which load with zeros.
      Json Prov = Json::object();
      Prov.set("cacheHits", E.CacheHits);
      Prov.set("variantsDerived", E.VariantsDerived);
      Prov.set("variantsSearched", E.VariantsSearched);
      Prov.set("variantsRejected", E.VariantsRejected);
      Prov.set("infeasiblePruned", E.InfeasiblePruned);
      Prov.set("configsRejected", E.ConfigsRejected);
      Prov.set("wallMs", E.WallMs);
      Prov.set("seedN", E.SeedN);
      Prov.set("seedVariant", E.SeedVariant);
      Row.set("provenance", std::move(Prov));
      List.push(std::move(Row));
    }
  }
  Json Root = Json::object();
  Root.set("version", 1);
  Root.set("entries", std::move(List));
  bool Ok = Root.saveFile(Path);
  if (!Ok)
    ECO_LOG(Warn) << "config db: cannot save to " << Path;
  else if (obs::metricsEnabled())
    obs::metrics().counter("serve.db_saves").inc();
  return Ok;
}

size_t ConfigDB::load(const std::string &Path) {
  Json Root = Json::loadFile(Path);
  const Json &List = Root.get("entries");
  if (!List.isArray()) {
    if (std::ifstream(Path).good()) {
      ECO_LOG(Warn) << "config db: ignoring unreadable " << Path
                    << "; starting empty";
    }
    return 0;
  }
  size_t Loaded = 0;
  for (size_t I = 0; I < List.size(); ++I) {
    const Json &Row = List.at(I);
    TunedEntry E;
    E.Kernel = Row.get("kernel").asString();
    E.MachineName = Row.get("machineName").asString();
    E.Scale = static_cast<unsigned>(Row.get("scale").asInt(1));
    E.N = Row.get("n").asInt();
    E.Variant = Row.get("variant").asString();
    E.BestCost = Row.get("cost").asNumber();
    E.Evaluations = static_cast<uint64_t>(Row.get("evaluations").asInt());
    E.Seconds = Row.get("seconds").asNumber();
    E.WarmStart = Row.get("warmStart").asString();
    // Legacy rows predate the provenance blob: they load with the
    // zero/empty defaults and stay valid (audits treat 0 as "unknown").
    const Json &Prov = Row.get("provenance");
    if (Prov.isObject()) {
      E.CacheHits = static_cast<uint64_t>(Prov.get("cacheHits").asInt());
      E.VariantsDerived =
          static_cast<uint64_t>(Prov.get("variantsDerived").asInt());
      E.VariantsSearched =
          static_cast<uint64_t>(Prov.get("variantsSearched").asInt());
      E.VariantsRejected =
          static_cast<uint64_t>(Prov.get("variantsRejected").asInt());
      E.InfeasiblePruned =
          static_cast<uint64_t>(Prov.get("infeasiblePruned").asInt());
      E.ConfigsRejected =
          static_cast<uint64_t>(Prov.get("configsRejected").asInt());
      E.WallMs = Prov.get("wallMs").asNumber();
      E.SeedN = Prov.get("seedN").asInt();
      E.SeedVariant = Prov.get("seedVariant").asString();
    }
    // The machine hash persists as fixed-width hex (same rendering as
    // the eval-cache keys); reparse it.
    const std::string &Hex = Row.get("machine").asString();
    if (E.Kernel.empty() || E.N <= 0 || Hex.size() != 16 ||
        !Row.get("config").isObject())
      continue; // malformed row: skip, keep loading the rest
    uint64_t Hash = 0;
    bool BadHex = false;
    for (char C : Hex) {
      Hash <<= 4;
      if (C >= '0' && C <= '9')
        Hash |= static_cast<uint64_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Hash |= static_cast<uint64_t>(C - 'a' + 10);
      else
        BadHex = true;
    }
    if (BadHex)
      continue;
    E.MachineHash = Hash;
    for (const auto &[Name, Value] : Row.get("config").fields())
      E.Config.emplace_back(Name, Value.asInt());
    MutexLock Lock(M);
    Entries[keyOf(E.Kernel, E.MachineHash, E.N)] = std::move(E);
    ++Loaded;
  }
  if (Loaded) {
    ECO_LOG(Info) << "config db: loaded " << Loaded << " entries from "
                  << Path;
  }
  return Loaded;
}
