//===- serve/Fleet.h - Remote evaluation worker fleet ----------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// WorkerPool dispatches warm evaluation batches to remote `eco_worker`
/// processes. Empirical search cost dominates tuning wall time (the
/// paper's §4.3 search-cost comparison), so evaluations are the thing
/// worth fanning out beyond one process.
///
/// The protocol is worker-initiated on the existing line-JSON wire:
/// workers register (`worker.hello`), long-poll for batches
/// (`worker.poll`), stream liveness (`worker.heartbeat`), and report
/// costs (`worker.result`). The daemon never pushes unsolicited data, so
/// the one-request/one-response framing of serve/Protocol.h is
/// untouched.
///
/// Failure model — every path degrades, none corrupts:
///
///  * per-batch deadline (BatchTimeoutMs): a straggling batch is
///    re-queued for another worker; the original's late result is still
///    accepted (results are keyed by EvalKey and EvalCache::insert is
///    idempotent for deterministic costs, so duplicate completions are
///    harmless);
///  * bounded retry with exponential backoff: a batch re-dispatches at
///    most MaxAttempts times, waiting min(Base << (attempt-1), Max)
///    between attempts;
///  * heartbeat eviction: a worker silent for HeartbeatTimeoutMs is
///    evicted and its in-flight batches re-queued; a SIGKILLed worker is
///    caught even faster by its connection closing (Server calls
///    disconnected());
///  * garbage results: a structurally invalid worker.result strikes the
///    worker (evicted after MaxStrikes consecutive garbage reports — a
///    valid result resets the count) and re-queues the batch if it is
///    still in flight on that worker; costs are never inserted from a
///    malformed report;
///  * fleet shrinks to zero: evalBatch() fails the remaining batches
///    immediately and returns — the points stay uncached, so the
///    engine's sequential decision loop evaluates them locally and the
///    tuned winner is bit-identical to a never-had-workers run.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SERVE_FLEET_H
#define ECO_SERVE_FLEET_H

#include "engine/Engine.h"
#include "support/Json.h"
#include "support/Sync.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace eco {
namespace serve {

/// Fleet dispatch knobs.
struct FleetOptions {
  /// Heartbeat interval advertised to workers at hello.
  int HeartbeatMs = 500;
  /// A worker silent (no poll/result/heartbeat) this long is evicted.
  int HeartbeatTimeoutMs = 5000;
  /// Per-batch deadline; a straggler past it is re-dispatched.
  int BatchTimeoutMs = 30000;
  /// Dispatch attempts per batch before it fails to local fallback.
  int MaxAttempts = 3;
  /// Exponential backoff between attempts: min(Base << (n-1), Max).
  int BackoffBaseMs = 50;
  int BackoffMaxMs = 2000;
  /// Structurally invalid results tolerated before eviction.
  int MaxStrikes = 2;
  /// Cap on a worker.poll long-poll wait, so Server::stop() joins
  /// connection threads promptly.
  int MaxPollWaitMs = 1000;
};

/// What a batch's points need beyond variant + config to be rebuilt
/// remotely: the kernel/machine pair and the representative size the
/// variants were derived for.
struct BatchContext {
  std::string Kernel;
  std::string Machine;
  unsigned Scale = 1;
  int64_t RepSize = 0;
};

/// The dispatcher. Wire-side methods are called by Server connection
/// threads; evalBatch() is called by TuneService job workers through the
/// engine's RemoteWarm hook. All state is guarded by one mutex; waits
/// are condition-variable laps so nothing blocks past its deadline.
class WorkerPool {
public:
  explicit WorkerPool(FleetOptions Opts = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  // --- wire side (one call per protocol verb) ---

  /// worker.hello {name} -> {ok, worker_id, heartbeat_ms}.
  Json hello(const Json &Req);
  /// worker.poll {worker_id, wait_ms} -> {ok, batch:{...}} | {ok,
  /// idle:true}. Blocks up to min(wait_ms, MaxPollWaitMs) for work.
  Json poll(const Json &Req);
  /// worker.result {worker_id, batch_id, costs:[num|null,...]} -> {ok}.
  /// A result for an already-resolved batch returns {ok, stale:true}.
  Json result(const Json &Req);
  /// worker.heartbeat {worker_id} -> {ok}.
  Json heartbeat(const Json &Req);
  /// The worker's connection closed (EOF / SIGKILL): evict immediately
  /// and re-queue its in-flight batches.
  void disconnected(uint64_t WorkerId);

  // --- dispatch side ---

  size_t liveWorkers() const;

  /// Shards \p Points contiguously across the live workers and blocks
  /// until every shard completes, fails, or the fleet empties. Completed
  /// costs are inserted into \p Cache under each point's Key. Returns
  /// immediately when there are no live workers. Never throws.
  void evalBatch(const BatchContext &Ctx,
                 const std::vector<RemotePoint> &Points,
                 const std::string &Stage, EvalCache &Cache);

  /// Fails all outstanding batches and wakes every waiter; subsequent
  /// evalBatch calls return immediately.
  void shutdown();

  /// Fleet counters for the stats verb: live workers, lifetime
  /// joins/losses, batches dispatched/retried/failed.
  Json statsJson() const;

private:
  using Clock = std::chrono::steady_clock;

  struct Worker {
    uint64_t Id = 0;
    std::string Name;
    Clock::time_point LastSeen;
    int Strikes = 0;
  };

  enum class BatchState { Queued, InFlight };

  struct Batch {
    uint64_t Id = 0;
    Json Payload; ///< prebuilt wire object handed to worker.poll
    std::vector<RemotePoint> Points;
    EvalCache *Cache = nullptr;
    BatchState State = BatchState::Queued;
    int Attempts = 0;           ///< incremented at each assignment
    uint64_t AssignedTo = 0;    ///< worker id (InFlight only)
    Clock::time_point DispatchedAt;
    Clock::time_point NotBefore; ///< backoff gate while Queued
    uint64_t Group = 0;          ///< owning evalBatch call
  };

  /// Evicts \p WorkerId with \p Reason, re-queuing its in-flight
  /// batches.
  void evictLocked(uint64_t WorkerId, const std::string &Reason)
      ECO_REQUIRES(M);
  /// Re-queues or fails \p B after a failed attempt.
  void requeueLocked(Batch &B, const std::string &Reason) ECO_REQUIRES(M);
  /// Heartbeat eviction + straggler re-dispatch sweep.
  void reapLocked(Clock::time_point Now) ECO_REQUIRES(M);
  /// Drops \p Id from Batches and wakes its evalBatch.
  void finishBatchLocked(uint64_t Id) ECO_REQUIRES(M);
  /// Mirrors the live-worker count into the obs gauge.
  void publishWorkerGaugeLocked() const ECO_REQUIRES(M);

  FleetOptions Opts;

  mutable Mutex M{"serve.fleet"};
  CondVar WorkCV; ///< pollers wait: batch available
  CondVar DoneCV; ///< evalBatch waits: batch resolved
  bool Stopping ECO_GUARDED_BY(M) = false;

  std::map<uint64_t, Worker> Workers ECO_GUARDED_BY(M);
  std::map<uint64_t, Batch> Batches ECO_GUARDED_BY(M); ///< queued+in-flight
  uint64_t NextWorkerId ECO_GUARDED_BY(M) = 1;
  uint64_t NextBatchId ECO_GUARDED_BY(M) = 1;
  uint64_t NextGroupId ECO_GUARDED_BY(M) = 1;
  /// Per-group count of unresolved batches; evalBatch waits for its
  /// group's count to hit zero.
  std::map<uint64_t, size_t> GroupRemaining ECO_GUARDED_BY(M);

  // Lifetime counters (also mirrored into obs metrics when enabled).
  uint64_t TotalJoined ECO_GUARDED_BY(M) = 0;
  uint64_t TotalLost ECO_GUARDED_BY(M) = 0;
  uint64_t TotalDispatched ECO_GUARDED_BY(M) = 0;
  uint64_t TotalRetried ECO_GUARDED_BY(M) = 0;
  uint64_t TotalFailed ECO_GUARDED_BY(M) = 0;
  uint64_t TotalCompleted ECO_GUARDED_BY(M) = 0;
};

} // namespace serve
} // namespace eco

#endif // ECO_SERVE_FLEET_H
