//===- serve/Worker.h - Remote evaluation worker ---------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `eco_worker` side of the fleet protocol (serve/Fleet.h): connect
/// to the daemon, register with `worker.hello`, long-poll for batches,
/// evaluate each point on a local simulator, and report costs with
/// `worker.result`, heartbeating between points.
///
/// Determinism: the worker rebuilds the exact evaluation from the batch
/// alone — kernel + machine by name, variants re-derived with the
/// shipped representative size (derivation order is stable, so variant
/// names agree across processes), the Env rebound from the portable
/// (name, value) config. The simulated cost is a pure function of that
/// triple, and JSON numbers round-trip doubles exactly, so a remote cost
/// is bit-identical to the local one.
///
/// A point the worker cannot evaluate — unknown variant name, unknown
/// symbol, illegal transform for that config — reports a null cost: the
/// daemon skips the cache insert and the tune's decision loop re-derives
/// the rejection (or evaluates locally) deterministically.
///
/// Chaos knobs exist for the fault-injection tests only: a worker can be
/// told to return garbage, freeze mid-batch (heartbeat eviction path),
/// or vanish mid-batch (the in-process analogue of SIGKILL).
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SERVE_WORKER_H
#define ECO_SERVE_WORKER_H

#include <atomic>
#include <string>
#include <vector>

namespace eco {
namespace serve {

/// runWorker() knobs (the eco_worker flags map onto these).
struct WorkerOptions {
  /// Unix socket path to the daemon; used when Port < 0.
  std::string Socket = "eco_serve.sock";
  std::string Host = "127.0.0.1";
  int Port = -1;
  /// Display name reported at hello (shows up in worker.* events).
  std::string Name = "worker";
  /// Long-poll wait per worker.poll request.
  int PollWaitMs = 1000;
  /// Sleep between reconnect attempts after a transport failure.
  int ReconnectMs = 200;
  /// Reconnect attempts before giving up (the daemon is gone).
  int MaxReconnects = 25;
  /// Connect/roundTrip timeout for the worker's client.
  int TimeoutMs = 10000;
  /// Exit after this many batches (< 0 = run until Stop/daemon exit).
  long MaxBatches = -1;
  /// Cooperative stop for in-process workers (tests run runWorker on a
  /// thread); checked between protocol round trips.
  std::atomic<bool> *Stop = nullptr;
  /// Fault injection: "" (none), "garbage" (malformed cost vectors),
  /// "freeze" (receive a batch, then go silent), "vanish" (receive a
  /// batch, then drop the connection and exit — SIGKILL analogue).
  std::string Chaos;
  /// Batches to serve honestly before Chaos triggers.
  long ChaosAfterBatches = 0;
};

/// Runs the worker loop until the daemon disappears (reconnects
/// exhausted), Stop is set, or MaxBatches is reached. Returns a process
/// exit code (0 = clean).
int runWorker(const WorkerOptions &Opts);

/// `eco_worker [flags]` / `eco_cli worker [flags]`:
///   --socket=PATH / --host=H --port=P   how to reach the daemon
///   --name=S          worker name (default "worker")
///   --poll-ms=MS      long-poll wait (default 1000)
///   --timeout-ms=MS   connect/response timeout (default 10000)
///   --max-batches=N   exit after N batches (default: run forever)
///   --chaos=MODE      garbage|freeze|vanish (fault-injection tests)
///   --chaos-after=N   honest batches before chaos (default 0)
int workerToolMain(const std::vector<std::string> &Args);

} // namespace serve
} // namespace eco

#endif // ECO_SERVE_WORKER_H
