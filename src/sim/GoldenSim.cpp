//===- sim/GoldenSim.cpp - Frozen seed simulator (exactness oracle) -------===//

#include "sim/GoldenSim.h"

#include <algorithm>
#include <cassert>

using namespace eco;

GoldenCache::GoldenCache(const CacheLevelDesc &D) : Desc(D) {
  assert(Desc.LineBytes > 0 && "line size must be positive");
  assert(Desc.Assoc > 0 && "associativity must be positive");
  Sets = Desc.numSets();
  assert(Sets > 0 && "capacity smaller than one set");
  Ways.assign(Sets * Desc.Assoc, Way());
}

CacheProbe GoldenCache::access(uint64_t Addr) {
  uint64_t Line = lineOf(Addr);
  Way *Set = &Ways[setOf(Line) * Desc.Assoc];
  for (unsigned W = 0; W < Desc.Assoc; ++W) {
    if (Set[W].Line != Line)
      continue;
    Way Found = Set[W];
    // Promote to MRU.
    for (unsigned V = W; V > 0; --V)
      Set[V] = Set[V - 1];
    Set[0] = Found;
    return {/*Hit=*/true, Found.Ready};
  }
  return {/*Hit=*/false, 0};
}

void GoldenCache::fill(uint64_t Addr, double ReadyCycle) {
  uint64_t Line = lineOf(Addr);
  Way *Set = &Ways[setOf(Line) * Desc.Assoc];
  unsigned Victim = Desc.Assoc - 1; // default: evict LRU
  for (unsigned W = 0; W < Desc.Assoc; ++W) {
    if (Set[W].Line == Line) {
      Victim = W;
      ReadyCycle = std::min(ReadyCycle, Set[W].Ready);
      break;
    }
  }
  for (unsigned V = Victim; V > 0; --V)
    Set[V] = Set[V - 1];
  Set[0] = {Line, ReadyCycle};
}

bool GoldenCache::contains(uint64_t Addr) const {
  uint64_t Line = lineOf(Addr);
  const Way *Set = &Ways[setOf(Line) * Desc.Assoc];
  for (unsigned W = 0; W < Desc.Assoc; ++W)
    if (Set[W].Line == Line)
      return true;
  return false;
}

void GoldenCache::reset() { Ways.assign(Ways.size(), Way()); }

CacheLevelDesc GoldenMemHierarchySim::tlbAsCache(const TlbDesc &T) {
  CacheLevelDesc D;
  D.Name = "TLB";
  D.CapacityBytes = static_cast<uint64_t>(T.Entries) * T.PageBytes;
  D.Assoc = T.Assoc;
  D.LineBytes = static_cast<unsigned>(T.PageBytes);
  D.HitLatency = 0;
  return D;
}

GoldenMemHierarchySim::GoldenMemHierarchySim(const MachineDesc &M)
    : Machine(M), Tlb(tlbAsCache(M.Tlb)) {
  assert(!M.Caches.empty() && "machine must have at least one cache level");
  assert(M.Caches.size() <= MaxCacheLevels && "too many cache levels");
  for (const CacheLevelDesc &Level : M.Caches)
    Caches.emplace_back(Level);
}

void GoldenMemHierarchySim::reset() {
  for (GoldenCache &C : Caches)
    C.reset();
  Tlb.reset();
  Counters = HWCounters();
  LastL1Line = ~0ULL;
  LastPage = ~0ULL;
}

double GoldenMemHierarchySim::walkCaches(uint64_t Addr, double Now,
                                         unsigned FillFromLevel,
                                         bool CountMisses) {
  // Probe from L1 outward until a level hits.
  for (unsigned Level = 0; Level < Caches.size(); ++Level) {
    // Prefetch fidelity fix (mirrored in the production simulator): a
    // fill targeting FillFromLevel must not touch the replacement state
    // of faster levels — probe those non-destructively.
    if (Level < FillFromLevel) {
      if (Caches[Level].contains(Addr))
        return 0;
      continue;
    }
    CacheProbe Probe = Caches[Level].access(Addr);
    if (!Probe.Hit) {
      if (CountMisses)
        ++Counters.CacheMisses[Level];
      continue;
    }
    double Stall = std::max<double>(Machine.Caches[Level].HitLatency,
                                    Probe.ReadyCycle - Now);
    Stall = std::max(Stall, 0.0);
    // Fill the faster levels with the line; data is there once the stall
    // (or the in-flight prefetch) completes.
    double Ready = Now + Stall;
    for (unsigned Upper = FillFromLevel; Upper < Level; ++Upper)
      Caches[Upper].fill(Addr, Ready);
    return Stall;
  }
  // Missed everywhere: go to memory.
  double Stall = Machine.MemLatency;
  double Ready = Now + Stall;
  for (unsigned Level = FillFromLevel; Level < Caches.size(); ++Level)
    Caches[Level].fill(Addr, Ready);
  return Stall;
}

double GoldenMemHierarchySim::access(uint64_t Addr, bool IsWrite,
                                     double Now) {
  if (IsWrite)
    ++Counters.Stores;
  else
    ++Counters.Loads;

  // Fast path: same L1 line and page as the previous access.
  uint64_t L1Line = Caches.front().lineOf(Addr);
  uint64_t Page = Tlb.lineOf(Addr);
  if (L1Line == LastL1Line && Page == LastPage)
    return 0;

  double Stall = 0;
  if (Page != LastPage) {
    CacheProbe TlbProbe = Tlb.access(Addr);
    if (!TlbProbe.Hit) {
      ++Counters.TlbMisses;
      Stall += Machine.Tlb.MissPenalty;
      Tlb.fill(Addr, /*ReadyCycle=*/0);
    }
    LastPage = Page;
  }

  Stall += walkCaches(Addr, Now + Stall);
  LastL1Line = L1Line;
  return Stall;
}

double GoldenMemHierarchySim::prefetch(uint64_t Addr, double Now) {
  ++Counters.Prefetches;
  ++Counters.Loads;

  CacheProbe TlbProbe = Tlb.access(Addr);
  if (!TlbProbe.Hit)
    Tlb.fill(Addr, /*ReadyCycle=*/0);
  unsigned FillFrom = std::min<unsigned>(
      Machine.PrefetchFillLevel,
      static_cast<unsigned>(Caches.size()) - 1);
  walkCaches(Addr, Now, FillFrom, /*CountMisses=*/false);
  LastL1Line = ~0ULL;
  return 0;
}
