//===- sim/Cache.cpp - Set-associative LRU cache model --------------------===//

#include "sim/Cache.h"

#include <algorithm>
#include <cassert>

using namespace eco;

SetAssocCache::SetAssocCache(const CacheLevelDesc &D) : Desc(D) {
  assert(Desc.LineBytes > 0 && "line size must be positive");
  assert(Desc.Assoc > 0 && "associativity must be positive");
  Sets = Desc.numSets();
  assert(Sets > 0 && "capacity smaller than one set");
  Ways.assign(Sets * Desc.Assoc, Way());
}

CacheProbe SetAssocCache::access(uint64_t Addr) {
  uint64_t Line = lineOf(Addr);
  Way *Set = &Ways[setOf(Line) * Desc.Assoc];
  for (unsigned W = 0; W < Desc.Assoc; ++W) {
    if (Set[W].Line != Line)
      continue;
    Way Found = Set[W];
    // Promote to MRU.
    for (unsigned V = W; V > 0; --V)
      Set[V] = Set[V - 1];
    Set[0] = Found;
    return {/*Hit=*/true, Found.Ready};
  }
  return {/*Hit=*/false, 0};
}

void SetAssocCache::fill(uint64_t Addr, double ReadyCycle) {
  uint64_t Line = lineOf(Addr);
  Way *Set = &Ways[setOf(Line) * Desc.Assoc];
  unsigned Victim = Desc.Assoc - 1; // default: evict LRU
  for (unsigned W = 0; W < Desc.Assoc; ++W) {
    if (Set[W].Line == Line) {
      Victim = W;
      ReadyCycle = std::min(ReadyCycle, Set[W].Ready);
      break;
    }
  }
  for (unsigned V = Victim; V > 0; --V)
    Set[V] = Set[V - 1];
  Set[0] = {Line, ReadyCycle};
}

bool SetAssocCache::contains(uint64_t Addr) const {
  uint64_t Line = lineOf(Addr);
  const Way *Set = &Ways[setOf(Line) * Desc.Assoc];
  for (unsigned W = 0; W < Desc.Assoc; ++W)
    if (Set[W].Line == Line)
      return true;
  return false;
}

void SetAssocCache::reset() { Ways.assign(Ways.size(), Way()); }
