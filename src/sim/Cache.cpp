//===- sim/Cache.cpp - Set-associative LRU cache model --------------------===//

#include "sim/Cache.h"

#include <algorithm>
#include <cassert>

using namespace eco;

namespace {

/// log2(V) when V is a power of two, else -1.
int log2Exact(uint64_t V) {
  if (V == 0 || (V & (V - 1)) != 0)
    return -1;
  int Shift = 0;
  while ((V >> Shift) != 1)
    ++Shift;
  return Shift;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheLevelDesc &D) : Desc(D) {
  assert(Desc.LineBytes > 0 && "line size must be positive");
  assert(Desc.Assoc > 0 && "associativity must be positive");
  Sets = Desc.numSets();
  assert(Sets > 0 && "capacity smaller than one set");
  LineShift = log2Exact(Desc.LineBytes);
  SetMask = log2Exact(Sets) >= 0 ? static_cast<int64_t>(Sets - 1) : -1;
  Lines.assign(Sets * Desc.Assoc, ~0ULL);
  Ready.assign(Sets * Desc.Assoc, 0.0);
  Stamps.assign(Sets * Desc.Assoc, 0);

  // Wide sets (the fully-associative TLB above all) get a way-hint table
  // sized ~4x the way count so hash collisions stay rare; narrow sets
  // resolve in a couple of compares anyway.
  if (Desc.Assoc >= 8) {
    size_t Slots = 64;
    while (Slots < 4 * Lines.size())
      Slots *= 2;
    Hint.assign(Slots, UINT32_MAX);
    HintShift = 64;
    while ((size_t(1) << (64 - HintShift)) < Slots)
      --HintShift;
  }
}

CacheProbe SetAssocCache::access(uint64_t Addr) {
  uint64_t Line = lineOf(Addr);
  if (!Hint.empty()) {
    // O(1) fast path: a validated hint is exactly the way the scan would
    // find (a line is resident in at most one way).
    uint32_t W = Hint[hintSlot(Line)];
    if (W < Lines.size() && Lines[W] == Line) {
      Stamps[W] = ++Clock;
      return {/*Hit=*/true, Ready[W]};
    }
  }
  size_t Base = setOf(Line) * Desc.Assoc;
  for (unsigned W = 0; W < Desc.Assoc; ++W) {
    if (Lines[Base + W] != Line)
      continue;
    // Promote to MRU: one stamp store (the seed shifted up to Assoc ways).
    Stamps[Base + W] = ++Clock;
    if (!Hint.empty())
      Hint[hintSlot(Line)] = static_cast<uint32_t>(Base + W);
    return {/*Hit=*/true, Ready[Base + W]};
  }
  return {/*Hit=*/false, 0};
}

void SetAssocCache::fill(uint64_t Addr, double ReadyCycle) {
  uint64_t Line = lineOf(Addr);
  size_t Base = setOf(Line) * Desc.Assoc;
  unsigned Victim = 0;
  uint64_t Oldest = ~0ULL;
  for (unsigned W = 0; W < Desc.Assoc; ++W) {
    if (Lines[Base + W] == Line) {
      // Re-fill of a resident line: refresh recency, keep the earlier
      // ready time (a later fill must not delay data already in flight).
      Stamps[Base + W] = ++Clock;
      Ready[Base + W] = std::min(ReadyCycle, Ready[Base + W]);
      return;
    }
    if (Stamps[Base + W] < Oldest) {
      Oldest = Stamps[Base + W];
      Victim = W;
    }
  }
  // Victim is the smallest stamp: an empty way if one exists (stamp 0),
  // otherwise the exact-LRU way. Distinct valid ways never tie — stamps
  // are unique — and empty ways are interchangeable.
  Lines[Base + Victim] = Line;
  Ready[Base + Victim] = ReadyCycle;
  Stamps[Base + Victim] = ++Clock;
  if (!Hint.empty())
    Hint[hintSlot(Line)] = static_cast<uint32_t>(Base + Victim);
}

bool SetAssocCache::contains(uint64_t Addr) const {
  uint64_t Line = lineOf(Addr);
  size_t Base = setOf(Line) * Desc.Assoc;
  for (unsigned W = 0; W < Desc.Assoc; ++W)
    if (Lines[Base + W] == Line)
      return true;
  return false;
}

void SetAssocCache::reset() {
  std::fill(Lines.begin(), Lines.end(), ~0ULL);
  std::fill(Ready.begin(), Ready.end(), 0.0);
  std::fill(Stamps.begin(), Stamps.end(), 0);
  std::fill(Hint.begin(), Hint.end(), UINT32_MAX);
  Clock = 0;
}
