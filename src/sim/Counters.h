//===- sim/Counters.h - PAPI-style hardware counters -----------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated hardware performance counters. The paper collected the
/// same quantities through PAPI on real machines (Table 1: Loads, L1
/// misses, L2 misses, TLB misses, Cycles); here the simulator fills them in.
///
/// PAPI-compatible conventions preserved from the paper's data:
///  * prefetch instructions count as loads (Table 1: mm4->mm5 and j1->j2
///    both gain ~one load per prefetch issued), and
///  * the miss counters see only demand traffic — prefetching leaves the
///    L1/L2/TLB miss counts essentially flat while cycles drop (Table 1:
///    j1 vs j2 misses nearly equal, cycles down ~24%).
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SIM_COUNTERS_H
#define ECO_SIM_COUNTERS_H

#include <array>
#include <cassert>
#include <cstdint>

namespace eco {

/// Maximum number of cache levels the simulator supports.
constexpr unsigned MaxCacheLevels = 4;

/// Event counts accumulated over one simulated execution.
struct HWCounters {
  uint64_t Loads = 0;      ///< demand loads + prefetch instructions
  uint64_t Stores = 0;
  uint64_t Prefetches = 0; ///< prefetch instructions (also counted in Loads)
  uint64_t Flops = 0;
  uint64_t LoopIters = 0;  ///< loop iterations executed (control overhead)

  std::array<uint64_t, MaxCacheLevels> CacheMisses = {0, 0, 0, 0};
  uint64_t TlbMisses = 0;

  double IssueCycles = 0; ///< cycles spent issuing instructions
  double StallCycles = 0; ///< cycles stalled on the memory hierarchy

  uint64_t l1Misses() const { return CacheMisses[0]; }
  uint64_t l2Misses() const { return CacheMisses[1]; }

  /// Total execution cycles under the issue + stall model.
  double cycles() const { return IssueCycles + StallCycles; }

  /// Achieved MFLOPS at \p ClockMHz.
  double mflops(double ClockMHz) const {
    assert(cycles() > 0 && "no cycles accumulated");
    return static_cast<double>(Flops) * ClockMHz / cycles();
  }

  /// Field-wise difference since an earlier snapshot of the same
  /// accumulating counter set — how the engine attributes one backend
  /// evaluation's hardware events to its (variant, stage) bucket.
  HWCounters delta(const HWCounters &Since) const {
    HWCounters D;
    D.Loads = Loads - Since.Loads;
    D.Stores = Stores - Since.Stores;
    D.Prefetches = Prefetches - Since.Prefetches;
    D.Flops = Flops - Since.Flops;
    D.LoopIters = LoopIters - Since.LoopIters;
    for (unsigned I = 0; I < MaxCacheLevels; ++I)
      D.CacheMisses[I] = CacheMisses[I] - Since.CacheMisses[I];
    D.TlbMisses = TlbMisses - Since.TlbMisses;
    D.IssueCycles = IssueCycles - Since.IssueCycles;
    D.StallCycles = StallCycles - Since.StallCycles;
    return D;
  }

  HWCounters &operator+=(const HWCounters &Other) {
    Loads += Other.Loads;
    Stores += Other.Stores;
    Prefetches += Other.Prefetches;
    Flops += Other.Flops;
    LoopIters += Other.LoopIters;
    for (unsigned I = 0; I < MaxCacheLevels; ++I)
      CacheMisses[I] += Other.CacheMisses[I];
    TlbMisses += Other.TlbMisses;
    IssueCycles += Other.IssueCycles;
    StallCycles += Other.StallCycles;
    return *this;
  }
};

} // namespace eco

#endif // ECO_SIM_COUNTERS_H
