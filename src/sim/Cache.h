//===- sim/Cache.h - Set-associative LRU cache model -----------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative LRU cache model. Each resident line carries a
/// ready-cycle so that non-blocking prefetches can fill a line "in flight":
/// a demand access that arrives before the line is ready stalls only for
/// the remaining cycles. This is what makes the paper's prefetch-distance
/// search (Section 3.2) meaningful in simulation — too-short distances pay
/// partial stalls, long-enough distances hide the full latency.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SIM_CACHE_H
#define ECO_SIM_CACHE_H

#include "machine/MachineDesc.h"

#include <cstdint>
#include <vector>

namespace eco {

/// Result of probing one cache level.
struct CacheProbe {
  bool Hit = false;
  double ReadyCycle = 0; ///< valid on hit: when the line's data arrives
};

/// One level of set-associative cache with true-LRU replacement.
class SetAssocCache {
public:
  explicit SetAssocCache(const CacheLevelDesc &Desc);

  /// Probes and, on hit, promotes the line to MRU. Does not fill on miss;
  /// callers fill explicitly so they control the ready cycle.
  CacheProbe access(uint64_t Addr);

  /// Inserts the line holding \p Addr (evicting LRU if needed), marking its
  /// data available at \p ReadyCycle. If already resident, just updates
  /// recency (and ready time if the new one is earlier).
  void fill(uint64_t Addr, double ReadyCycle);

  /// True if the line holding \p Addr is resident (no LRU update).
  bool contains(uint64_t Addr) const;

  /// Empties the cache.
  void reset();

  unsigned lineBytes() const { return Desc.LineBytes; }
  uint64_t numSets() const { return Sets; }
  unsigned assoc() const { return Desc.Assoc; }

  /// The line-granular tag for an address (address / line size).
  uint64_t lineOf(uint64_t Addr) const { return Addr / Desc.LineBytes; }

private:
  struct Way {
    uint64_t Line = ~0ULL; ///< line number, ~0 = invalid
    double Ready = 0;
  };

  CacheLevelDesc Desc;
  uint64_t Sets;
  /// Sets x Assoc entries; within a set, index 0 is MRU, Assoc-1 is LRU.
  std::vector<Way> Ways;

  uint64_t setOf(uint64_t Line) const { return Line % Sets; }
};

} // namespace eco

#endif // ECO_SIM_CACHE_H
