//===- sim/Cache.h - Set-associative LRU cache model -----------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative LRU cache model. Each resident line carries a
/// ready-cycle so that non-blocking prefetches can fill a line "in flight":
/// a demand access that arrives before the line is ready stalls only for
/// the remaining cycles. This is what makes the paper's prefetch-distance
/// search (Section 3.2) meaningful in simulation — too-short distances pay
/// partial stalls, long-enough distances hide the full latency.
///
/// Replacement state is an age-stamp (clock) representation of exact LRU:
/// every touch stamps the way with a monotonically increasing counter, and
/// the fill victim is the way with the smallest stamp. This is
/// semantically identical to the classic recency-ordered representation
/// (the seed kept ways sorted MRU-first and shifted up to Assoc entries on
/// every hit and fill — see sim/GoldenSim.h for that frozen model), but a
/// hit now costs one store instead of a memmove, which matters because the
/// simulator's probe loop *is* the empirical search's hot path.
///
/// Stamps leave resident lines at stable way positions, so a plain tag
/// scan averages Assoc/2 compares — a regression against the seed for the
/// 64-entry fully-associative TLB, where MRU ordering kept hot pages at
/// the front of the scan. Wide caches therefore carry a way-hint table: a
/// small hash-indexed array mapping a line to the way that last held it.
/// A correct hint resolves a hit in O(1); a stale or colliding hint just
/// falls back to the scan. Hints only short-circuit a lookup that would
/// have succeeded anyway — replacement state, counters, and timings are
/// unaffected, and the trace-equivalence suite (tests/test_sim_equiv.cpp)
/// proves HWCounters stay bit-identical to the seed.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SIM_CACHE_H
#define ECO_SIM_CACHE_H

#include "machine/MachineDesc.h"

#include <cstdint>
#include <vector>

namespace eco {

/// Result of probing one cache level.
struct CacheProbe {
  bool Hit = false;
  double ReadyCycle = 0; ///< valid on hit: when the line's data arrives
};

/// One level of set-associative cache with true-LRU replacement.
class SetAssocCache {
public:
  explicit SetAssocCache(const CacheLevelDesc &Desc);

  /// Probes and, on hit, promotes the line to MRU. Does not fill on miss;
  /// callers fill explicitly so they control the ready cycle.
  CacheProbe access(uint64_t Addr);

  /// Inserts the line holding \p Addr (evicting LRU if needed), marking its
  /// data available at \p ReadyCycle. If already resident, just updates
  /// recency (and ready time if the new one is earlier).
  void fill(uint64_t Addr, double ReadyCycle);

  /// True if the line holding \p Addr is resident. Purely observational:
  /// no recency update, so non-destructive probes (prefetch filtering,
  /// white-box tests) cannot perturb replacement state.
  bool contains(uint64_t Addr) const;

  /// Empties the cache.
  void reset();

  unsigned lineBytes() const { return Desc.LineBytes; }
  uint64_t numSets() const { return Sets; }
  unsigned assoc() const { return Desc.Assoc; }

  /// The line-granular tag for an address (address / line size); a shift
  /// when the line size is a power of two.
  uint64_t lineOf(uint64_t Addr) const {
    return LineShift >= 0 ? Addr >> LineShift : Addr / Desc.LineBytes;
  }

private:
  CacheLevelDesc Desc;
  uint64_t Sets;
  int LineShift = -1;     ///< log2(LineBytes) when a power of two, else -1
  int64_t SetMask = -1;   ///< Sets - 1 when a power of two, else -1

  /// Way state, structure-of-arrays (Sets x Assoc each): the tag scan in
  /// access() touches only Lines, so a probe walks one dense array.
  /// Invalid ways hold Line = ~0 and Stamp = 0; valid ways always carry a
  /// stamp >= 1, so empty ways are preferred victims automatically.
  std::vector<uint64_t> Lines;
  std::vector<double> Ready;
  std::vector<uint64_t> Stamps;
  uint64_t Clock = 0; ///< per-cache LRU clock; bumped on every touch

  /// Way-hint table (wide caches only, empty otherwise): Fibonacci-hashed
  /// line -> global way index that last held it. Purely an accelerator —
  /// every use re-validates against Lines before trusting it.
  std::vector<uint32_t> Hint;
  int HintShift = 0; ///< 64 - log2(Hint.size())

  uint64_t setOf(uint64_t Line) const {
    return SetMask >= 0 ? (Line & static_cast<uint64_t>(SetMask))
                        : Line % Sets;
  }

  size_t hintSlot(uint64_t Line) const {
    return static_cast<size_t>((Line * 0x9E3779B97F4A7C15ULL) >> HintShift);
  }
};

} // namespace eco

#endif // ECO_SIM_CACHE_H
