//===- sim/MemHierarchy.cpp - Full memory-hierarchy simulator ------------===//

#include "sim/MemHierarchy.h"

#include <algorithm>
#include <cassert>

using namespace eco;

CacheLevelDesc MemHierarchySim::tlbAsCache(const TlbDesc &T) {
  CacheLevelDesc D;
  D.Name = "TLB";
  D.CapacityBytes = static_cast<uint64_t>(T.Entries) * T.PageBytes;
  D.Assoc = T.Assoc;
  D.LineBytes = static_cast<unsigned>(T.PageBytes);
  D.HitLatency = 0;
  return D;
}

MemHierarchySim::MemHierarchySim(const MachineDesc &M)
    : Machine(M), Tlb(tlbAsCache(M.Tlb)) {
  assert(!M.Caches.empty() && "machine must have at least one cache level");
  assert(M.Caches.size() <= MaxCacheLevels && "too many cache levels");
  for (const CacheLevelDesc &Level : M.Caches)
    Caches.emplace_back(Level);
  L1HitLatency = M.Caches.front().HitLatency;
  TlbMissPenalty = M.Tlb.MissPenalty;
  PrefetchFillFrom = std::min<unsigned>(
      Machine.PrefetchFillLevel,
      static_cast<unsigned>(Caches.size()) - 1);
}

void MemHierarchySim::reset() {
  for (SetAssocCache &C : Caches)
    C.reset();
  Tlb.reset();
  Counters = HWCounters();
  LastL1Line = ~0ULL;
  LastPage = ~0ULL;
}

double MemHierarchySim::walkCaches(uint64_t Addr, double Now,
                                   unsigned StartLevel,
                                   unsigned FillFromLevel,
                                   bool CountMisses) {
  // Probe from StartLevel outward until a level hits.
  for (unsigned Level = StartLevel; Level < Caches.size(); ++Level) {
    CacheProbe Probe = Caches[Level].access(Addr);
    if (!Probe.Hit) {
      if (CountMisses)
        ++Counters.CacheMisses[Level];
      continue;
    }
    double Stall = std::max<double>(Machine.Caches[Level].HitLatency,
                                    Probe.ReadyCycle - Now);
    Stall = std::max(Stall, 0.0);
    // Fill the faster levels with the line; data is there once the stall
    // (or the in-flight prefetch) completes.
    double Ready = Now + Stall;
    for (unsigned Upper = FillFromLevel; Upper < Level; ++Upper)
      Caches[Upper].fill(Addr, Ready);
    return Stall;
  }
  // Missed everywhere: go to memory.
  double Stall = Machine.MemLatency;
  double Ready = Now + Stall;
  for (unsigned Level = FillFromLevel; Level < Caches.size(); ++Level)
    Caches[Level].fill(Addr, Ready);
  return Stall;
}

double MemHierarchySim::access(uint64_t Addr, bool IsWrite, double Now) {
  if (IsWrite)
    ++Counters.Stores;
  else
    ++Counters.Loads;

  // Fast path: same L1 line and page as the previous access. Exact
  // w.r.t. LRU state and, since a prior demand access already waited for
  // the line, free of residual stall.
  uint64_t L1Line = Caches.front().lineOf(Addr);
  uint64_t Page = Tlb.lineOf(Addr);
  if (L1Line == LastL1Line && Page == LastPage)
    return 0;

  // Fused TLB + L1 probe: the dominant post-filter pattern in dense
  // loops is a new line (or new array) that still hits L1, so the hit
  // path runs straight through here without entering the level walk.
  double Stall = 0;
  if (Page != LastPage) {
    CacheProbe TlbProbe = Tlb.access(Addr);
    if (!TlbProbe.Hit) {
      ++Counters.TlbMisses;
      Stall += TlbMissPenalty;
      Tlb.fill(Addr, /*ReadyCycle=*/0);
    }
    LastPage = Page;
  }
  LastL1Line = L1Line;

  CacheProbe L1Probe = Caches.front().access(Addr);
  if (L1Probe.Hit) {
    // Same arithmetic as the walk's hit case, inlined for the fast path.
    double HitStall = std::max<double>(L1HitLatency,
                                       L1Probe.ReadyCycle - (Now + Stall));
    return Stall + std::max(HitStall, 0.0);
  }
  ++Counters.CacheMisses[0];
  Stall += walkCaches(Addr, Now + Stall, /*StartLevel=*/1);
  return Stall;
}

double MemHierarchySim::prefetch(uint64_t Addr, double Now) {
  // PAPI convention (Table 1): the prefetch instruction is a load, but
  // the hardware miss counters see only demand traffic — prefetching
  // raises Loads while L1/L2/TLB miss counts stay essentially flat.
  ++Counters.Prefetches;
  ++Counters.Loads;

  CacheProbe TlbProbe = Tlb.access(Addr);
  if (!TlbProbe.Hit)
    Tlb.fill(Addr, /*ReadyCycle=*/0);

  // The L1-line MRU filter must not short-circuit the next demand access
  // to this line (it may still need to pay the in-flight remainder).
  LastL1Line = ~0ULL;

  // A prefetch targets PrefetchFillFrom (L2 by default): levels faster
  // than the target are probed non-destructively, because a fill staged
  // in L2 must not promote or evict anything in L1 — the seed probed L1
  // with a recency-updating access here, so an L2-targeted prefetch of a
  // line resident in L1 reordered the L1 LRU stack in a way real
  // hardware would not (see tests/test_sim.cpp PrefetchDoesNotPerturbL1Lru).
  for (unsigned Level = 0; Level < PrefetchFillFrom; ++Level)
    if (Caches[Level].contains(Addr))
      return 0; // already resident somewhere faster: nothing to stage

  // The prefetched data arrives after the cycles a demand access would
  // have stalled; walkCaches stamps the filled lines with that ready time,
  // so a demand access arriving earlier pays only the remainder.
  walkCaches(Addr, Now, /*StartLevel=*/PrefetchFillFrom, PrefetchFillFrom,
             /*CountMisses=*/false);
  return 0;
}
