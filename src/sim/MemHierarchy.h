//===- sim/MemHierarchy.h - Full memory-hierarchy simulator ----*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace-driven simulator of a complete memory hierarchy (TLB + N cache
/// levels + memory) parameterized by a MachineDesc. This is the substitute
/// for the paper's SGI R10000 / Sun UltraSparc IIe hardware and its PAPI
/// counters (see DESIGN.md): the empirical-search phase "executes" code
/// variants against this simulator and reads back HWCounters.
///
/// Timing model:
///  * demand access: TLB miss penalty + the hit latency of the level that
///    services it (L1 hit is free, memory costs MemLatency), except that a
///    line filled by an in-flight prefetch only charges the cycles still
///    remaining until the line is ready;
///  * prefetch: counts as a load but never stalls and never shows up in
///    the miss counters — it stages the line at the machine's prefetch
///    fill level (L2 by default) with a ready-cycle in the future.
///    Levels faster than the fill target are probed non-destructively:
///    an L2-targeted prefetch cannot promote or evict L1 lines.
///
/// The demand path is branch-light: a one-entry MRU filter short-circuits
/// same-line runs, and the TLB + L1 probes are fused so the common L1 hit
/// never enters the per-level walk. sim/GoldenSim.h freezes the seed
/// model; tests/test_sim_equiv.cpp proves both produce bit-identical
/// HWCounters on randomized traces.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SIM_MEMHIERARCHY_H
#define ECO_SIM_MEMHIERARCHY_H

#include "machine/MachineDesc.h"
#include "sim/Cache.h"
#include "sim/Counters.h"

#include <memory>
#include <vector>

namespace eco {

/// Simulates TLB + caches + memory for a stream of addresses.
class MemHierarchySim {
public:
  explicit MemHierarchySim(const MachineDesc &M);

  /// Simulates a demand load/store of the byte at \p Addr at time \p Now
  /// (cycles). Returns the stall cycles the access incurs. Counters are
  /// updated (Loads/Stores, per-level misses, TLB misses).
  double access(uint64_t Addr, bool IsWrite, double Now);

  /// Simulates a software prefetch of the line holding \p Addr issued at
  /// time \p Now. Never stalls; returns 0 for convenience.
  double prefetch(uint64_t Addr, double Now);

  /// Counter access.
  HWCounters &counters() { return Counters; }
  const HWCounters &counters() const { return Counters; }

  /// Clears caches, TLB, and counters.
  void reset();

  const MachineDesc &machine() const { return Machine; }

  /// Direct cache access for white-box tests.
  SetAssocCache &cacheLevel(unsigned Level) {
    assert(Level < Caches.size());
    return Caches[Level];
  }
  SetAssocCache &tlb() { return Tlb; }

private:
  /// Walks the cache levels for \p Addr starting at \p StartLevel (the
  /// demand path probes L1 inline and enters at 1 on a miss), filling
  /// every missing level from \p FillFromLevel outward with a ready time
  /// of Now + stall. Returns the stall a demand access pays; a prefetch
  /// ignores the return value and thereby leaves the fill "in flight".
  /// Prefetch walks pass CountMisses = false: hardware miss counters see
  /// only demand traffic (the paper's Table 1 shows prefetching adding
  /// loads while miss counts stay flat).
  double walkCaches(uint64_t Addr, double Now, unsigned StartLevel = 0,
                    unsigned FillFromLevel = 0, bool CountMisses = true);

  static CacheLevelDesc tlbAsCache(const TlbDesc &T);

  MachineDesc Machine;
  std::vector<SetAssocCache> Caches;
  SetAssocCache Tlb; ///< modeled as a cache whose "lines" are pages
  HWCounters Counters;

  /// Hot-path constants hoisted out of MachineDesc at construction.
  double L1HitLatency = 0;
  double TlbMissPenalty = 0;
  unsigned PrefetchFillFrom = 0; ///< clamped Machine.PrefetchFillLevel

  /// One-entry MRU filter: repeated accesses to the same L1 line (the
  /// dominant pattern in dense loops) skip the full walk. Exact: repeated
  /// hits on the MRU line change no LRU state. Invalidated by any other
  /// access or prefetch.
  uint64_t LastL1Line = ~0ULL;
  uint64_t LastPage = ~0ULL;
};

} // namespace eco

#endif // ECO_SIM_MEMHIERARCHY_H
