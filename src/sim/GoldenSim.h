//===- sim/GoldenSim.h - Frozen seed simulator (exactness oracle) -*- C++ -*-//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A frozen copy of the seed memory-hierarchy model, kept as the golden
/// oracle for the production simulator's exactness contract:
///
///  * GoldenCache keeps the seed's recency-ordered LRU representation —
///    within a set, index 0 is MRU and index Assoc-1 is LRU, so every hit
///    and fill shifts up to Assoc Way entries. The production
///    SetAssocCache replaced this with age stamps (sim/Cache.h); the two
///    must be observationally identical.
///  * GoldenMemHierarchySim keeps the seed's uniform probe-from-L1 walk
///    (the production simulator fuses the TLB + L1 probe into a
///    branch-light fast path).
///
/// Divergence policy: this model is byte-faithful to the seed for all
/// demand traffic. The one deliberate difference is the PR-2 prefetch
/// fidelity fix — a prefetch targeting level FillFromLevel probes the
/// faster levels non-destructively instead of promoting a resident L1
/// line to MRU — which is applied to BOTH models so the randomized
/// trace-equivalence suite (tests/test_sim_equiv.cpp) can cover prefetch
/// streams too. The seed's buggy behavior is characterized separately in
/// tests/test_sim.cpp (PrefetchDoesNotPerturbL1Lru).
///
/// bench/bench_eval_throughput.cpp replays identical traces through both
/// models to report the hot-path overhaul's speedup; the counters must
/// match bit-for-bit while the wall time drops.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_SIM_GOLDENSIM_H
#define ECO_SIM_GOLDENSIM_H

#include "machine/MachineDesc.h"
#include "sim/Cache.h"
#include "sim/Counters.h"

#include <cstdint>
#include <vector>

namespace eco {

/// The seed's set-associative LRU cache: ways stored in recency order.
class GoldenCache {
public:
  explicit GoldenCache(const CacheLevelDesc &Desc);

  CacheProbe access(uint64_t Addr);
  void fill(uint64_t Addr, double ReadyCycle);
  bool contains(uint64_t Addr) const;
  void reset();

  unsigned lineBytes() const { return Desc.LineBytes; }
  uint64_t numSets() const { return Sets; }
  uint64_t lineOf(uint64_t Addr) const { return Addr / Desc.LineBytes; }

private:
  struct Way {
    uint64_t Line = ~0ULL; ///< line number, ~0 = invalid
    double Ready = 0;
  };

  CacheLevelDesc Desc;
  uint64_t Sets;
  /// Sets x Assoc entries; within a set, index 0 is MRU, Assoc-1 is LRU.
  std::vector<Way> Ways;

  uint64_t setOf(uint64_t Line) const { return Line % Sets; }
};

/// The seed's TLB + caches + memory walk over GoldenCache levels.
class GoldenMemHierarchySim {
public:
  explicit GoldenMemHierarchySim(const MachineDesc &M);

  /// Same contract as MemHierarchySim::access.
  double access(uint64_t Addr, bool IsWrite, double Now);

  /// Same contract as MemHierarchySim::prefetch.
  double prefetch(uint64_t Addr, double Now);

  HWCounters &counters() { return Counters; }
  const HWCounters &counters() const { return Counters; }

  void reset();

private:
  double walkCaches(uint64_t Addr, double Now, unsigned FillFromLevel = 0,
                    bool CountMisses = true);

  static CacheLevelDesc tlbAsCache(const TlbDesc &T);

  MachineDesc Machine;
  std::vector<GoldenCache> Caches;
  GoldenCache Tlb;
  HWCounters Counters;

  uint64_t LastL1Line = ~0ULL;
  uint64_t LastPage = ~0ULL;
};

} // namespace eco

#endif // ECO_SIM_GOLDENSIM_H
