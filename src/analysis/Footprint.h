//===- analysis/Footprint.h - Footprint models and constraints -*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic footprint models and the constraint language of the paper's
/// Figure 3. A tile's cache footprint is a product of tile-size parameters
/// (e.g. the B tile in Matrix Multiply occupies TJ*TK doubles), and the
/// derived constraints are exactly the paper's Table 4 forms:
///
///     UI * UJ <= 32        (register file)
///     TJ * TK <= 2048      ((n-1)/n of a 2-way 32 KB L1, in doubles)
///
/// Constraints are sums of products of parameters bounded by a limit, so
/// the empirical search can check candidate parameter values in O(#terms).
///
//===----------------------------------------------------------------------===//

#ifndef ECO_ANALYSIS_FOOTPRINT_H
#define ECO_ANALYSIS_FOOTPRINT_H

#include "ir/Array.h"
#include "machine/MachineDesc.h"

#include <map>
#include <string>
#include <vector>

namespace eco {

/// The extent a loop variable covers inside the region being modeled:
/// either a tile-size parameter (symbolic) or a constant (e.g. an unroll
/// factor, or 1 for loops outside the region).
struct VarExtent {
  SymbolId Param = -1; ///< >= 0: extent is this parameter's value
  int64_t Const = 1;   ///< otherwise this constant

  static VarExtent param(SymbolId P) { return {P, 1}; }
  static VarExtent constant(int64_t C) { return {-1, C}; }

  int64_t eval(const Env &E) const { return Param >= 0 ? E.get(Param) : Const; }
  bool isParam() const { return Param >= 0; }
};

/// Map from loop variable to its extent within the modeled region.
using ExtentMap = std::map<SymbolId, VarExtent>;

/// Coeff * product of parameters (parameters may repeat).
struct ProductTerm {
  int64_t Coeff = 1;
  std::vector<SymbolId> Params;

  int64_t eval(const Env &E) const {
    int64_t V = Coeff;
    for (SymbolId P : Params)
      V *= E.get(P);
    return V;
  }

  ProductTerm &operator*=(const VarExtent &X) {
    if (X.isParam())
      Params.push_back(X.Param);
    else
      Coeff *= X.Const;
    return *this;
  }

  std::string str(const SymbolTable &Syms) const;
};

/// Sum of product terms <= Limit.
struct Constraint {
  std::vector<ProductTerm> Terms;
  int64_t Limit = 0;
  std::string Note; ///< e.g. "L1 footprint of B tile"

  bool satisfied(const Env &E) const {
    int64_t Total = 0;
    for (const ProductTerm &T : Terms)
      Total += T.eval(E);
    return Total <= Limit;
  }

  int64_t lhs(const Env &E) const {
    int64_t Total = 0;
    for (const ProductTerm &T : Terms)
      Total += T.eval(E);
    return Total;
  }

  std::string str(const SymbolTable &Syms) const;
};

/// Footprint, in array elements, of one uniformly-generated reference
/// family over the region described by \p Extents: the product over
/// dimensions of the extents of the loop variables each subscript uses
/// (variables absent from \p Extents contribute 1).
ProductTerm familyFootprintElems(const ArrayRef &Representative,
                                 const ExtentMap &Extents);

/// Footprint of the same family in memory pages, approximated as the
/// product of the extents of every non-contiguous dimension (each distinct
/// "column" of the tile starts a new page run) times the pages one
/// contiguous run covers.
ProductTerm familyFootprintPages(const ArrayRef &Representative,
                                 const ArrayDecl &Decl,
                                 const ExtentMap &Extents,
                                 const Env &SizeEnv, uint64_t PageBytes);

/// The paper's effective cache capacity heuristic: a full direct-mapped
/// cache, (n-1)/n of an n-way cache (Section 3.1.1), in elements.
int64_t effectiveCapacityElems(const CacheLevelDesc &Cache,
                               unsigned ElemBytes);

} // namespace eco

#endif // ECO_ANALYSIS_FOOTPRINT_H
