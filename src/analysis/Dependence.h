//===- analysis/Dependence.h - Lightweight dependence testing --*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight data-dependence test sufficient for the dense kernels the
/// paper targets. For every pair of references to the same array in which
/// at least one writes, the test classifies the dependence:
///
///  * different uniformly-generated families or non-affine relation:
///    conservatively "unknown" — the nest is reported not permutable;
///  * same family: the constant subscript offset is solved into a
///    per-loop distance; a nest is fully permutable (and hence freely
///    tileable / interchangeable / unroll-and-jammable) when every
///    dependence's per-loop distances are sign-consistent (all >= 0 or
///    all <= 0) — e.g. Matrix Multiply's C read/write at distance zero.
///
/// Loops whose variable does not appear in the family's subscripts carry
/// the dependence at every distance ("*" direction, the reduction loop K
/// in Matrix Multiply). When every known component is zero the dependence
/// is a same-cell update chain and reordering only reassociates it, so it
/// does not block permutation or tiling; a "*" combined with a nonzero
/// known distance does (ordering the starred loop outside the carrying
/// loop could reverse the dependence).
///
//===----------------------------------------------------------------------===//

#ifndef ECO_ANALYSIS_DEPENDENCE_H
#define ECO_ANALYSIS_DEPENDENCE_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace eco {

/// One detected dependence between two references.
struct Dependence {
  ArrayRef Src;
  ArrayRef Dst;
  /// Distance per spine loop (parallel to loops()); 0 for "=" and for
  /// loops absent from the subscripts.
  std::vector<int64_t> Distance;
  /// Parallel to Distance: true where the loop variable is absent from
  /// the family's subscripts, so the distance is really "*" (any value),
  /// not the 0 stored in Distance. Legality checks that reorder loops
  /// must treat starred components as unconstrained.
  std::vector<bool> Star;
  bool Unknown = false; ///< could not be analyzed precisely
};

/// Result of analyzing a nest.
struct DependenceInfo {
  std::vector<SymbolId> Loops; ///< spine loop variables, outermost first
  std::vector<Dependence> Deps;
  bool FullyPermutable = true;
  std::vector<std::string> Notes;
};

/// Analyzes all pairs of conflicting references in \p Nest.
DependenceInfo analyzeDependences(const LoopNest &Nest);

/// Same analysis restricted to an explicit loop set and reference list
/// (each ref paired with its is-write flag). Transform legality checks
/// use this to analyze a subtree (e.g. the loops an unroll-and-jam would
/// reorder) of a nest whose global spine is no longer perfect.
DependenceInfo
analyzeDependencesOver(const LoopNest &Nest,
                       std::vector<SymbolId> Loops,
                       const std::vector<std::pair<ArrayRef, bool>> &Refs);

} // namespace eco

#endif // ECO_ANALYSIS_DEPENDENCE_H
