//===- analysis/Dependence.cpp - Lightweight dependence testing ----------===//

#include "analysis/Dependence.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace eco;

namespace {

enum class SolveResult {
  Solved,      ///< unique distance vector found
  Independent, ///< provably no integer/lattice solution: no dependence
  Unsolvable,  ///< could not resolve uniquely: caller must assume worst
};

/// Solves offset = sum_v t_v * coeffvec(v) for per-loop distances t_v,
/// greedily resolving each variable from a dimension it alone drives.
SolveResult solveDistances(const ArrayRef &Rep,
                           const std::vector<SymbolId> &Loops,
                           const std::vector<int64_t> &Steps,
                           std::vector<int64_t> Offset,
                           std::vector<int64_t> &Distance) {
  Distance.assign(Loops.size(), 0);
  std::vector<bool> Solved(Loops.size(), false);

  for (size_t Round = 0; Round < Loops.size(); ++Round) {
    bool Progress = false;
    for (size_t L = 0; L < Loops.size(); ++L) {
      if (Solved[L])
        continue;
      // Find a dimension where this variable is the only unsolved one.
      for (unsigned D = 0; D < Rep.rank(); ++D) {
        int64_t Coeff = Rep.Subs[D].coeff(Loops[L]);
        if (Coeff == 0)
          continue;
        bool Alone = true;
        for (size_t O = 0; O < Loops.size(); ++O)
          if (O != L && !Solved[O] && Rep.Subs[D].coeff(Loops[O]) != 0)
            Alone = false;
        if (!Alone)
          continue;
        if (Offset[D] % Coeff != 0)
          return SolveResult::Independent; // no integer solution
        Distance[L] = Offset[D] / Coeff;
        // Subtract this variable's contribution everywhere.
        for (unsigned D2 = 0; D2 < Rep.rank(); ++D2)
          Offset[D2] -= Distance[L] * Rep.Subs[D2].coeff(Loops[L]);
        Solved[L] = true;
        Progress = true;
        break;
      }
      // Variables absent from all subscripts: distance unconstrained,
      // treat as 0 ("=" / "*" direction).
      if (!Solved[L]) {
        bool Appears = false;
        for (unsigned D = 0; D < Rep.rank(); ++D)
          if (Rep.Subs[D].coeff(Loops[L]) != 0)
            Appears = true;
        if (!Appears) {
          Solved[L] = true;
          Progress = true;
        }
      }
    }
    if (!Progress)
      break;
  }

  for (bool S : Solved)
    if (!S)
      return SolveResult::Unsolvable;
  // Verify the residual is zero (the solution must explain every
  // dimension; a leftover means the system has no solution at all).
  for (unsigned D = 0; D < Rep.rank(); ++D)
    if (Offset[D] != 0)
      return SolveResult::Independent;
  // Distances are solved in value space; a loop stepping by S (an
  // unrolled loop advancing by its factor) only realizes multiples of S,
  // so a non-multiple means the pair never aliases (e.g. the jammed
  // copies C[I,J] and C[I,J+1] under a step-U J loop). Divisible
  // distances are normalized to iteration counts.
  for (size_t L = 0; L < Loops.size(); ++L) {
    if (Steps[L] <= 1)
      continue;
    if (Distance[L] % Steps[L] != 0)
      return SolveResult::Independent;
    Distance[L] /= Steps[L];
  }
  return SolveResult::Solved;
}

} // namespace

DependenceInfo eco::analyzeDependences(const LoopNest &Nest) {
  std::vector<SymbolId> Loops;
  for (const Loop *L : Nest.spine())
    Loops.push_back(L->Var);

  // Gather all references.
  std::vector<std::pair<ArrayRef, bool>> Refs;
  Nest.forEachStmt([&](const Stmt &S) {
    S.forEachRef([&](const ArrayRef &Ref, bool IsWrite) {
      Refs.push_back({Ref, IsWrite});
    });
  });
  return analyzeDependencesOver(Nest, std::move(Loops), Refs);
}

DependenceInfo eco::analyzeDependencesOver(
    const LoopNest &Nest, std::vector<SymbolId> Loops,
    const std::vector<std::pair<ArrayRef, bool>> &Refs) {
  DependenceInfo Info;
  Info.Loops = std::move(Loops);

  // Concrete steps restrict the iteration lattice (unrolled loops
  // advance by their factor); a parameter step (tile control) is an
  // unknown multiple, treated conservatively as 1.
  std::vector<int64_t> Steps(Info.Loops.size(), 1);
  for (size_t L = 0; L < Info.Loops.size(); ++L)
    if (const Loop *LoopPtr = Nest.findLoop(Info.Loops[L]))
      if (!LoopPtr->hasParamStep())
        Steps[L] = std::max<int64_t>(LoopPtr->Step, 1);

  for (size_t A = 0; A < Refs.size(); ++A) {
    for (size_t B = A; B < Refs.size(); ++B) {
      if (Refs[A].first.Array != Refs[B].first.Array)
        continue;
      if (!Refs[A].second && !Refs[B].second)
        continue; // read-read
      if (A == B && !Refs[A].second)
        continue;

      Dependence Dep;
      Dep.Src = Refs[A].first;
      Dep.Dst = Refs[B].first;

      auto Offset = Refs[A].first.constOffsetTo(Refs[B].first);
      if (!Offset) {
        Dep.Unknown = true;
        Info.FullyPermutable = false;
        Info.Notes.push_back("non-uniform conflicting pair on array " +
                             Nest.array(Refs[A].first.Array).Name);
        Info.Deps.push_back(std::move(Dep));
        continue;
      }

      SolveResult SR = solveDistances(Refs[A].first, Info.Loops, Steps,
                                      *Offset, Dep.Distance);
      if (SR == SolveResult::Independent)
        continue; // provably never aliases: no dependence
      if (SR == SolveResult::Unsolvable) {
        bool AllZeroOffset = true;
        for (int64_t O : *Offset)
          if (O != 0)
            AllZeroOffset = false;
        if (!AllZeroOffset) {
          Dep.Unknown = true;
          Info.FullyPermutable = false;
          Info.Notes.push_back("unsolvable subscript system on array " +
                               Nest.array(Refs[A].first.Array).Name);
          Info.Deps.push_back(std::move(Dep));
        }
        continue;
      }

      // Loops absent from the family's subscripts carry the dependence
      // at every distance: record the "*" mask for legality checks.
      Dep.Star.assign(Info.Loops.size(), false);
      for (size_t L = 0; L < Info.Loops.size(); ++L) {
        bool Appears = false;
        for (unsigned D = 0; D < Refs[A].first.rank(); ++D)
          if (Refs[A].first.Subs[D].coeff(Info.Loops[L]) != 0)
            Appears = true;
        Dep.Star[L] = !Appears;
      }

      // Sign consistency check.
      bool AnyPos = false, AnyNeg = false, AnyStar = false;
      for (size_t L = 0; L < Dep.Distance.size(); ++L) {
        AnyPos |= Dep.Distance[L] > 0;
        AnyNeg |= Dep.Distance[L] < 0;
        AnyStar |= Dep.Star[L];
      }
      if (AnyPos && AnyNeg) {
        Info.FullyPermutable = false;
        Info.Notes.push_back("sign-mixed dependence distance on array " +
                             Nest.array(Refs[A].first.Array).Name);
      }
      // A starred loop carries the dependence at every distance. With a
      // nonzero known component the vector can be driven lexicographically
      // negative by ordering the starred loop outside the known-distance
      // one, so such dependences block free permutation (a pure update
      // chain — all known components zero — only reassociates and stays
      // permutable).
      if (AnyStar && (AnyPos || AnyNeg)) {
        Info.FullyPermutable = false;
        Info.Notes.push_back(
            "dependence on array " + Nest.array(Refs[A].first.Array).Name +
            " mixes a '*' direction with a nonzero distance");
      }
      Info.Deps.push_back(std::move(Dep));
    }
  }
  return Info;
}
