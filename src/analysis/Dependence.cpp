//===- analysis/Dependence.cpp - Lightweight dependence testing ----------===//

#include "analysis/Dependence.h"
#include "support/StringUtils.h"

using namespace eco;

namespace {

/// Solves offset = sum_v t_v * coeffvec(v) for per-loop distances t_v,
/// greedily resolving each variable from a dimension it alone drives.
/// Returns false if no unique solution is found that way.
bool solveDistances(const ArrayRef &Rep,
                    const std::vector<SymbolId> &Loops,
                    std::vector<int64_t> Offset,
                    std::vector<int64_t> &Distance) {
  Distance.assign(Loops.size(), 0);
  std::vector<bool> Solved(Loops.size(), false);

  for (size_t Round = 0; Round < Loops.size(); ++Round) {
    bool Progress = false;
    for (size_t L = 0; L < Loops.size(); ++L) {
      if (Solved[L])
        continue;
      // Find a dimension where this variable is the only unsolved one.
      for (unsigned D = 0; D < Rep.rank(); ++D) {
        int64_t Coeff = Rep.Subs[D].coeff(Loops[L]);
        if (Coeff == 0)
          continue;
        bool Alone = true;
        for (size_t O = 0; O < Loops.size(); ++O)
          if (O != L && !Solved[O] && Rep.Subs[D].coeff(Loops[O]) != 0)
            Alone = false;
        if (!Alone)
          continue;
        if (Offset[D] % Coeff != 0)
          return false; // no integer solution: no dependence, treat as 0
        Distance[L] = Offset[D] / Coeff;
        // Subtract this variable's contribution everywhere.
        for (unsigned D2 = 0; D2 < Rep.rank(); ++D2)
          Offset[D2] -= Distance[L] * Rep.Subs[D2].coeff(Loops[L]);
        Solved[L] = true;
        Progress = true;
        break;
      }
      // Variables absent from all subscripts: distance unconstrained,
      // treat as 0 ("=" / "*" direction).
      if (!Solved[L]) {
        bool Appears = false;
        for (unsigned D = 0; D < Rep.rank(); ++D)
          if (Rep.Subs[D].coeff(Loops[L]) != 0)
            Appears = true;
        if (!Appears) {
          Solved[L] = true;
          Progress = true;
        }
      }
    }
    if (!Progress)
      break;
  }

  for (bool S : Solved)
    if (!S)
      return false;
  // Verify the residual is zero.
  for (unsigned D = 0; D < Rep.rank(); ++D)
    if (Offset[D] != 0)
      return false;
  return true;
}

} // namespace

DependenceInfo eco::analyzeDependences(const LoopNest &Nest) {
  DependenceInfo Info;
  for (const Loop *L : Nest.spine())
    Info.Loops.push_back(L->Var);

  // Gather all references.
  std::vector<std::pair<ArrayRef, bool>> Refs;
  Nest.forEachStmt([&](const Stmt &S) {
    S.forEachRef([&](const ArrayRef &Ref, bool IsWrite) {
      Refs.push_back({Ref, IsWrite});
    });
  });

  for (size_t A = 0; A < Refs.size(); ++A) {
    for (size_t B = A; B < Refs.size(); ++B) {
      if (Refs[A].first.Array != Refs[B].first.Array)
        continue;
      if (!Refs[A].second && !Refs[B].second)
        continue; // read-read
      if (A == B && !Refs[A].second)
        continue;

      Dependence Dep;
      Dep.Src = Refs[A].first;
      Dep.Dst = Refs[B].first;

      auto Offset = Refs[A].first.constOffsetTo(Refs[B].first);
      if (!Offset) {
        Dep.Unknown = true;
        Info.FullyPermutable = false;
        Info.Notes.push_back("non-uniform conflicting pair on array " +
                             Nest.array(Refs[A].first.Array).Name);
        Info.Deps.push_back(std::move(Dep));
        continue;
      }

      if (!solveDistances(Refs[A].first, Info.Loops, *Offset,
                          Dep.Distance)) {
        // Either no integer solution (independent) or unsolvable system.
        bool AllZeroOffset = true;
        for (int64_t O : *Offset)
          if (O != 0)
            AllZeroOffset = false;
        if (!AllZeroOffset) {
          Dep.Unknown = true;
          Info.FullyPermutable = false;
          Info.Notes.push_back("unsolvable subscript system on array " +
                               Nest.array(Refs[A].first.Array).Name);
          Info.Deps.push_back(std::move(Dep));
        }
        continue;
      }

      // Sign consistency check.
      bool AnyPos = false, AnyNeg = false;
      for (int64_t T : Dep.Distance) {
        AnyPos |= T > 0;
        AnyNeg |= T < 0;
      }
      if (AnyPos && AnyNeg) {
        Info.FullyPermutable = false;
        Info.Notes.push_back("sign-mixed dependence distance on array " +
                             Nest.array(Refs[A].first.Array).Name);
      }
      Info.Deps.push_back(std::move(Dep));
    }
  }
  return Info;
}
