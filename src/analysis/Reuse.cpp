//===- analysis/Reuse.cpp - Wolf/Lam-style reuse analysis -----------------===//

#include "analysis/Reuse.h"

#include <algorithm>

using namespace eco;

namespace {

/// If Diff == t * Coeffs for a (possibly zero) integer t, returns t;
/// otherwise nullopt. All-zero Coeffs matches only an all-zero Diff.
std::optional<int64_t> solveAligned(const std::vector<int64_t> &Diff,
                                    const std::vector<int64_t> &Coeffs) {
  std::optional<int64_t> T;
  for (size_t D = 0; D < Diff.size(); ++D) {
    if (Coeffs[D] == 0) {
      if (Diff[D] != 0)
        return std::nullopt;
      continue;
    }
    if (Diff[D] % Coeffs[D] != 0)
      return std::nullopt;
    int64_t Cand = Diff[D] / Coeffs[D];
    if (T && *T != Cand)
      return std::nullopt;
    T = Cand;
  }
  return T ? T : std::optional<int64_t>(0);
}

} // namespace

ReuseAnalysis::ReuseAnalysis(const LoopNest &N, const Env &SizeEnv,
                             int64_t LineElemsIn)
    : Nest(N), LineElems(LineElemsIn) {
  // Collect references from every statement.
  Nest.forEachStmt([&](const Stmt &S) {
    S.forEachRef([&](const ArrayRef &Ref, bool IsWrite) {
      Refs.push_back({Ref, IsWrite, -1});
    });
  });

  // Partition into uniformly generated families.
  std::vector<std::vector<int64_t>> RepOffsets; // rep has offset 0
  for (size_t R = 0; R < Refs.size(); ++R) {
    for (int F = 0; F < NumFamilies; ++F) {
      const ArrayRef &Rep = Refs[FamilyMembers[F].front()].Ref;
      if (Rep.constOffsetTo(Refs[R].Ref)) {
        Refs[R].Family = F;
        FamilyMembers[F].push_back(static_cast<int>(R));
        break;
      }
    }
    if (Refs[R].Family < 0) {
      Refs[R].Family = NumFamilies++;
      FamilyMembers.push_back({static_cast<int>(R)});
    }
  }
  FamilyAccesses.assign(NumFamilies, 0);
  for (const RefInfo &RI : Refs)
    ++FamilyAccesses[RI.Family];

  // Per-member offsets relative to the representative.
  FamilyOffsets.resize(Refs.size());
  for (int F = 0; F < NumFamilies; ++F) {
    const ArrayRef &Rep = Refs[FamilyMembers[F].front()].Ref;
    for (int M : FamilyMembers[F])
      FamilyOffsets[M] = *Rep.constOffsetTo(Refs[M].Ref);
  }

  // Spine loops and trip counts.
  for (const Loop *L : Nest.spine()) {
    LoopVars.push_back(L->Var);
    int64_t Trip = L->Upper.eval(SizeEnv) - L->Lower.eval(SizeEnv) + 1;
    Trips.push_back(std::max<int64_t>(Trip, 0));
  }
}

bool ReuseAnalysis::familyOffsetsAllZero(int F) const {
  assert(F >= 0 && F < NumFamilies && "bad family");
  for (int M : FamilyMembers[F])
    for (int64_t Off : FamilyOffsets[M])
      if (Off != 0)
        return false;
  return true;
}

const ArrayRef &ReuseAnalysis::familyRep(int F) const {
  assert(F >= 0 && F < NumFamilies && "bad family");
  return Refs[FamilyMembers[F].front()].Ref;
}

int64_t ReuseAnalysis::tripCount(SymbolId Var) const {
  for (size_t L = 0; L < LoopVars.size(); ++L)
    if (LoopVars[L] == Var)
      return Trips[L];
  assert(false && "unknown loop variable");
  return 0;
}

std::vector<int64_t> ReuseAnalysis::coeffVec(int F, SymbolId Var) const {
  const ArrayRef &Rep = familyRep(F);
  std::vector<int64_t> Coeffs;
  Coeffs.reserve(Rep.rank());
  for (const AffineExpr &Sub : Rep.Subs)
    Coeffs.push_back(Sub.coeff(Var));
  return Coeffs;
}

FamilyReuse ReuseAnalysis::reuse(int F, SymbolId Var) const {
  FamilyReuse R;
  const ArrayRef &Rep = familyRep(F);
  std::vector<int64_t> Coeffs = coeffVec(F, Var);
  bool UsesVar =
      std::any_of(Coeffs.begin(), Coeffs.end(),
                  [](int64_t C) { return C != 0; });

  int64_t Trip = tripCount(Var);

  if (!UsesVar) {
    R.SelfTemporal = true;
    R.Amount = static_cast<double>(Trip);
  } else {
    // Self-spatial: Var drives only the contiguous dimension, with unit
    // coefficient.
    const ArrayDecl &Decl = Nest.array(Rep.Array);
    unsigned ContigDim = Decl.Order == Layout::ColMajor ? 0 : Rep.rank() - 1;
    bool OnlyContig = true;
    for (unsigned D = 0; D < Coeffs.size(); ++D)
      if (Coeffs[D] != 0 && D != ContigDim)
        OnlyContig = false;
    if (OnlyContig && (Coeffs[ContigDim] == 1 || Coeffs[ContigDim] == -1)) {
      R.SelfSpatial = true;
      R.Amount = static_cast<double>(LineElems);
    }
  }

  // Group-temporal: two members aligned along Var's direction.
  if (UsesVar && FamilyMembers[F].size() > 1) {
    const std::vector<int> &Members = FamilyMembers[F];
    for (size_t A = 0; A < Members.size() && !R.GroupTemporal; ++A) {
      for (size_t B = A + 1; B < Members.size(); ++B) {
        std::vector<int64_t> Diff = FamilyOffsets[Members[B]];
        for (size_t D = 0; D < Diff.size(); ++D)
          Diff[D] -= FamilyOffsets[Members[A]][D];
        auto T = solveAligned(Diff, Coeffs);
        if (T && *T != 0) {
          R.GroupTemporal = true;
          R.Amount = std::max(R.Amount, static_cast<double>(Trip));
          break;
        }
      }
    }
  }
  return R;
}

/// Accesses saved per iteration of \p Var by exploiting family \p F's
/// temporal reuse there: all of the family's accesses for self-temporal
/// (the data stays put across iterations); one access per merged pair for
/// group-temporal.
static double perIterTemporalSavings(const ReuseAnalysis &RA, int F,
                                     SymbolId Var, const FamilyReuse &R,
                                     int MergedPairs) {
  if (R.SelfTemporal)
    return RA.familyAccessCount(F);
  if (R.GroupTemporal)
    return MergedPairs;
  (void)Var;
  return 0;
}

double
ReuseAnalysis::temporalWeight(SymbolId Var,
                              const std::set<int> &Exploited) const {
  double W = 0;
  for (int F = 0; F < NumFamilies; ++F) {
    if (Exploited.count(F))
      continue;
    FamilyReuse R = reuse(F, Var);
    if (!R.SelfTemporal && !R.GroupTemporal)
      continue;
    // Count merged alignment classes for group reuse.
    int Merged = 0;
    if (R.GroupTemporal) {
      std::vector<int64_t> Coeffs = coeffVec(F, Var);
      const std::vector<int> &Members = FamilyMembers[F];
      std::vector<int> ClassOf(Members.size(), -1);
      int Classes = 0;
      for (size_t A = 0; A < Members.size(); ++A) {
        if (ClassOf[A] >= 0)
          continue;
        ClassOf[A] = Classes++;
        for (size_t B = A + 1; B < Members.size(); ++B) {
          if (ClassOf[B] >= 0)
            continue;
          std::vector<int64_t> Diff = FamilyOffsets[Members[B]];
          for (size_t D = 0; D < Diff.size(); ++D)
            Diff[D] -= FamilyOffsets[Members[A]][D];
          if (solveAligned(Diff, Coeffs))
            ClassOf[B] = ClassOf[A];
        }
      }
      Merged = static_cast<int>(Members.size()) - Classes;
    }
    W += perIterTemporalSavings(*this, F, Var, R, Merged) *
         static_cast<double>(tripCount(Var));
  }
  return W;
}

double
ReuseAnalysis::spatialWeight(SymbolId Var,
                             const std::set<int> &Exploited) const {
  double W = 0;
  for (int F = 0; F < NumFamilies; ++F) {
    if (Exploited.count(F))
      continue;
    FamilyReuse R = reuse(F, Var);
    if (!R.SelfSpatial)
      continue;
    W += familyAccessCount(F) * static_cast<double>(tripCount(Var)) *
         (static_cast<double>(LineElems) - 1) / LineElems;
  }
  return W;
}

std::vector<SymbolId> ReuseAnalysis::mostProfitableLoops(
    const std::vector<SymbolId> &Candidates,
    const std::set<int> &Exploited, bool SpatialTieBreak) const {
  assert(!Candidates.empty() && "no candidate loops");
  std::vector<double> TW, SW;
  for (SymbolId V : Candidates) {
    TW.push_back(temporalWeight(V, Exploited));
    SW.push_back(spatialWeight(V, Exploited));
  }
  double MaxT = *std::max_element(TW.begin(), TW.end());

  std::vector<SymbolId> Best;
  if (MaxT > 0) {
    for (size_t C = 0; C < Candidates.size(); ++C)
      if (TW[C] == MaxT)
        Best.push_back(Candidates[C]);
    if (Best.size() <= 1 || !SpatialTieBreak)
      return Best;
    // Break the temporal tie by the spatial reuse each loop's *retained*
    // families enjoy under it (reuse the loop can actually keep in this
    // cache level).
    std::vector<double> RetainedSW;
    for (SymbolId V : Best) {
      double W = 0;
      for (int F : mostProfitableRefs(V, Exploited))
        if (reuse(F, V).SelfSpatial)
          W += familyAccessCount(F);
      RetainedSW.push_back(W);
    }
    double MaxRS = *std::max_element(RetainedSW.begin(), RetainedSW.end());
    std::vector<SymbolId> Narrowed;
    for (size_t C = 0; C < Best.size(); ++C)
      if (RetainedSW[C] == MaxRS)
        Narrowed.push_back(Best[C]);
    return Narrowed;
  }
  // No temporal reuse anywhere: fall back to spatial.
  double MaxS = *std::max_element(SW.begin(), SW.end());
  for (size_t C = 0; C < Candidates.size(); ++C)
    if (SW[C] == MaxS)
      Best.push_back(Candidates[C]);
  return Best;
}

std::vector<int>
ReuseAnalysis::mostProfitableRefs(SymbolId Var,
                                  const std::set<int> &Exploited) const {
  std::vector<double> W(NumFamilies, 0);
  for (int F = 0; F < NumFamilies; ++F) {
    if (Exploited.count(F))
      continue;
    FamilyReuse R = reuse(F, Var);
    if (R.SelfTemporal)
      W[F] = static_cast<double>(familyAccessCount(F)) * R.Amount;
    else if (R.GroupTemporal)
      W[F] = R.Amount;
  }
  double Max = *std::max_element(W.begin(), W.end());
  std::vector<int> Best;
  if (Max <= 0)
    return Best;
  for (int F = 0; F < NumFamilies; ++F)
    if (W[F] == Max)
      Best.push_back(F);
  return Best;
}
