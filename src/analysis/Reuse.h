//===- analysis/Reuse.h - Wolf/Lam-style reuse analysis --------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reuse analysis over uniformly generated reference families, following
/// the framework the paper cites (Wolf, "Improving Locality and
/// Parallelism in Nested Loops", 1992):
///
///  * self-temporal reuse of r in loop l: no subscript of r uses l, so the
///    same element is touched every iteration (R_l(r) = N_l);
///  * self-spatial reuse: l drives only the contiguous dimension with
///    coefficient +-1, so the same cache line is touched CLS times;
///  * group-temporal reuse: two references in the same family touch the
///    same element a fixed number of l-iterations apart (the Jacobi
///    B[I-1]/B[I]/B[I+1] pattern).
///
/// The profitability queries used by the variant-derivation algorithm
/// (Figure 3's MostProfitableLoops / MostProfitableRefs) rank loops by the
/// unexploited temporal reuse they carry, breaking ties with spatial reuse
/// and returning multiple loops when genuinely tied — ties are what create
/// multiple variants.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_ANALYSIS_REUSE_H
#define ECO_ANALYSIS_REUSE_H

#include "ir/Loop.h"

#include <set>
#include <string>
#include <vector>

namespace eco {

/// One reference occurrence in the nest.
struct RefInfo {
  ArrayRef Ref;
  bool IsWrite = false;
  int Family = -1; ///< uniformly-generated equivalence class
};

/// Reuse of one family in one loop.
struct FamilyReuse {
  bool SelfTemporal = false;
  bool SelfSpatial = false;
  bool GroupTemporal = false;
  double Amount = 1; ///< R_l: trip count, line length, or 1
};

/// Reuse analysis of an (untransformed) loop nest.
class ReuseAnalysis {
public:
  /// \p SizeEnv must bind the nest's problem sizes; it supplies the trip
  /// counts N_l. \p LineElems is the cache-line length in elements used to
  /// weight spatial reuse.
  ReuseAnalysis(const LoopNest &Nest, const Env &SizeEnv,
                int64_t LineElems = 8);

  const std::vector<RefInfo> &refs() const { return Refs; }
  int numFamilies() const { return NumFamilies; }

  /// A representative reference of family \p F (first occurrence).
  const ArrayRef &familyRep(int F) const;

  /// Number of accesses (reads + writes) in family \p F per iteration.
  int familyAccessCount(int F) const { return FamilyAccesses[F]; }

  /// True if every member of family \p F has the same subscripts (no
  /// constant offsets) — a requirement for the copy optimization's simple
  /// tile regions.
  bool familyOffsetsAllZero(int F) const;

  /// The loop variables of the nest's spine, outermost first.
  const std::vector<SymbolId> &loops() const { return LoopVars; }

  /// Trip count of loop \p Var under the size environment.
  int64_t tripCount(SymbolId Var) const;

  /// Reuse of family \p F in loop \p Var.
  FamilyReuse reuse(int F, SymbolId Var) const;

  /// Temporal-reuse weight loop \p Var carries over families not in
  /// \p Exploited: sum of accesses-saved-per-iteration * trip count.
  double temporalWeight(SymbolId Var, const std::set<int> &Exploited) const;

  /// Spatial analogue (used as a tie-breaker).
  double spatialWeight(SymbolId Var, const std::set<int> &Exploited) const;

  /// Figure 3's MostProfitableLoops: among \p Candidates, the loops
  /// carrying maximal unexploited temporal reuse; remaining ties returned
  /// together (=> multiple variants).
  ///
  /// When \p SpatialTieBreak is set (cache levels), a temporal tie is
  /// first narrowed by the spatial reuse of each loop's retained families.
  /// The register level passes false — registers exploit only temporal
  /// reuse (Section 3.1.1), which is how Jacobi keeps its three-way tie
  /// and produces variants with different loop orders.
  std::vector<SymbolId>
  mostProfitableLoops(const std::vector<SymbolId> &Candidates,
                      const std::set<int> &Exploited,
                      bool SpatialTieBreak = true) const;

  /// Figure 3's MostProfitableRefs: the families with maximal temporal
  /// reuse carried by \p Var, excluding \p Exploited.
  std::vector<int> mostProfitableRefs(SymbolId Var,
                                      const std::set<int> &Exploited) const;

private:
  /// Per-dimension coefficients of \p Var in family \p F's subscripts.
  std::vector<int64_t> coeffVec(int F, SymbolId Var) const;

  const LoopNest &Nest;
  int64_t LineElems;
  std::vector<RefInfo> Refs;
  int NumFamilies = 0;
  std::vector<int> FamilyAccesses;
  std::vector<std::vector<int64_t>> FamilyOffsets; ///< flattened per member
  std::vector<std::vector<int>> FamilyMembers;     ///< ref indices
  std::vector<SymbolId> LoopVars;
  std::vector<int64_t> Trips; ///< parallel to LoopVars
};

} // namespace eco

#endif // ECO_ANALYSIS_REUSE_H
