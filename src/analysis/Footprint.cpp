//===- analysis/Footprint.cpp - Footprint models and constraints ---------===//

#include "analysis/Footprint.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace eco;

std::string ProductTerm::str(const SymbolTable &Syms) const {
  std::vector<std::string> Parts;
  if (Coeff != 1 || Params.empty())
    Parts.push_back(std::to_string(Coeff));
  for (SymbolId P : Params)
    Parts.push_back(Syms.name(P));
  return join(Parts, "*");
}

std::string Constraint::str(const SymbolTable &Syms) const {
  std::vector<std::string> Parts;
  for (const ProductTerm &T : Terms)
    Parts.push_back(T.str(Syms));
  std::string Out = join(Parts, " + ") + " <= " + std::to_string(Limit);
  if (!Note.empty())
    Out += "   (" + Note + ")";
  return Out;
}

ProductTerm eco::familyFootprintElems(const ArrayRef &Representative,
                                      const ExtentMap &Extents) {
  ProductTerm Term;
  for (const AffineExpr &Sub : Representative.Subs) {
    for (SymbolId Var : Sub.symbols()) {
      auto It = Extents.find(Var);
      if (It == Extents.end())
        continue; // variable fixed within the region: extent 1
      Term *= It->second;
    }
  }
  return Term;
}

ProductTerm eco::familyFootprintPages(const ArrayRef &Representative,
                                      const ArrayDecl &Decl,
                                      const ExtentMap &Extents,
                                      const Env &SizeEnv,
                                      uint64_t PageBytes) {
  // Contiguous dimension: 0 for column-major, rank-1 for row-major.
  unsigned ContigDim =
      Decl.Order == Layout::ColMajor ? 0 : Representative.rank() - 1;

  ProductTerm Term;
  for (unsigned D = 0; D < Representative.rank(); ++D) {
    if (D == ContigDim)
      continue;
    for (SymbolId Var : Representative.Subs[D].symbols()) {
      auto It = Extents.find(Var);
      if (It == Extents.end())
        continue;
      Term *= It->second;
    }
  }
  // Pages per contiguous run: at least 1; if the whole column is resident
  // (extent covers the full dimension), scale by column bytes / page.
  int64_t ColElems = 1;
  for (SymbolId Var : Representative.Subs[ContigDim].symbols()) {
    auto It = Extents.find(Var);
    if (It != Extents.end() && !It->second.isParam())
      ColElems = std::max(ColElems, It->second.eval(SizeEnv));
  }
  int64_t RunPages = std::max<int64_t>(
      1, (ColElems * Decl.ElemBytes + PageBytes - 1) /
             static_cast<int64_t>(PageBytes));
  Term.Coeff *= RunPages;
  return Term;
}

int64_t eco::effectiveCapacityElems(const CacheLevelDesc &Cache,
                                    unsigned ElemBytes) {
  int64_t Elems = static_cast<int64_t>(Cache.CapacityBytes / ElemBytes);
  if (Cache.Assoc <= 1)
    return Elems;
  return Elems * (Cache.Assoc - 1) / Cache.Assoc;
}
