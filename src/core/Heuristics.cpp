//===- core/Heuristics.cpp - AI-search alternatives ------------------------===//

#include "core/Heuristics.h"
#include "support/Rng.h"
#include "support/Timer.h"
#include "transform/TransformError.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace eco;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Shared evaluation plumbing: instantiation + cost caches, bounds and
/// feasibility checks, budget accounting, trace recording.
class HeuristicEvaluator {
public:
  HeuristicEvaluator(const DerivedVariant &V, EvalBackend &B,
                     const HeuristicSearchOptions &Opts)
      : V(V), B(B), Opts(Opts) {
    for (const auto &[Var, Param] : V.TileParamOf)
      TileParams.push_back(Param);
    for (const UnrollSpec &U : V.Spec.Unrolls)
      UnrollParams.push_back(U.FactorParam);
    for (const PrefetchSpec &P : V.Prefetch)
      PfParams.push_back(P.DistanceParam);
  }

  /// Budget is counted in unique evaluations, but a search revisiting
  /// cached configurations must still terminate: cap total attempts too.
  bool budgetLeft() const {
    return Trace.Points.size() < Opts.Budget &&
           Attempts < Opts.Budget * 20;
  }

  double eval(const Env &E) {
    ++Attempts;
    if (!withinBounds(E) || !V.feasible(E))
      return Inf;
    std::string Key = V.configString(E);
    auto Cached = CostCache.find(Key);
    if (Cached != CostCache.end())
      return Cached->second;
    if (!budgetLeft())
      return Inf;

    std::string InstKey;
    for (SymbolId P : UnrollParams)
      InstKey += std::to_string(E.get(P)) + ",";
    for (SymbolId P : PfParams)
      InstKey += std::to_string(E.get(P)) + ",";
    auto It = InstCache.find(InstKey);
    if (It == InstCache.end()) {
      try {
        It = InstCache.emplace(InstKey, V.instantiate(E, B.machine())).first;
      } catch (const TransformError &) {
        // Illegal unroll request at this point: infeasible, not fatal.
        CostCache[Key] = Inf;
        return Inf;
      }
    }

    double Cost = B.evaluate(It->second, E);
    CostCache[Key] = Cost;
    Trace.Points.push_back({Key, Cost});
    return Cost;
  }

  /// Random neighbor: perturb one parameter (double/halve tiles, +-1
  /// unroll, step prefetch distance).
  Env neighbor(const Env &Cur, Rng &R) {
    Env Cand = Cur;
    std::vector<SymbolId> All;
    All.insert(All.end(), TileParams.begin(), TileParams.end());
    All.insert(All.end(), UnrollParams.begin(), UnrollParams.end());
    All.insert(All.end(), PfParams.begin(), PfParams.end());
    if (All.empty())
      return Cand;
    SymbolId P = All[R.nextInt(0, static_cast<int>(All.size()) - 1)];
    int64_t Val = Cur.get(P);
    bool IsTile = std::find(TileParams.begin(), TileParams.end(), P) !=
                  TileParams.end();
    bool IsPf = std::find(PfParams.begin(), PfParams.end(), P) !=
                PfParams.end();
    int64_t Next;
    if (IsTile)
      Next = R.nextBool() ? Val * 2 : std::max<int64_t>(Val / 2, 1);
    else if (IsPf)
      Next = R.nextBool() ? std::min<int64_t>(Val == 0 ? 1 : Val * 2,
                                              Opts.MaxPrefetchDistance)
                          : Val / 2;
    else
      Next = std::clamp<int64_t>(Val + (R.nextBool() ? 1 : -1), 1,
                                 Opts.MaxUnroll);
    Cand.set(P, Next);
    return Cand;
  }

  /// Uniform random feasible-ish point (used for restarts).
  Env randomPoint(const Env &Base, Rng &R) {
    Env Cand = Base;
    for (SymbolId P : TileParams)
      Cand.set(P, int64_t(1) << R.nextInt(0, 8));
    for (SymbolId P : UnrollParams)
      Cand.set(P, int64_t(1) << R.nextInt(0, 4));
    for (SymbolId P : PfParams)
      Cand.set(P, R.nextBool() ? R.nextInt(1, 16) : 0);
    return Cand;
  }

  SearchTrace takeTrace() { return std::move(Trace); }

private:
  bool withinBounds(const Env &E) const {
    for (SymbolId P : UnrollParams)
      if (E.get(P) < 1 || E.get(P) > Opts.MaxUnroll)
        return false;
    for (SymbolId P : TileParams)
      if (E.get(P) < 1 || E.get(P) > Opts.MaxTile)
        return false;
    for (SymbolId P : PfParams)
      if (E.get(P) < 0 || E.get(P) > Opts.MaxPrefetchDistance)
        return false;
    return true;
  }

  const DerivedVariant &V;
  EvalBackend &B;
  HeuristicSearchOptions Opts;
  std::vector<SymbolId> TileParams, UnrollParams, PfParams;
  std::map<std::string, double> CostCache;
  std::map<std::string, LoopNest> InstCache;
  SearchTrace Trace;
  size_t Attempts = 0;
};

} // namespace

VariantSearchResult
eco::hillClimbVariant(const DerivedVariant &Variant, EvalBackend &Backend,
                      const ParamBindings &Problem,
                      const HeuristicSearchOptions &Opts) {
  Timer Elapsed;
  HeuristicEvaluator Eval(Variant, Backend, Opts);
  Rng R(Opts.Seed);

  Env Cur = initialConfig(Variant, Backend.machine(), Problem);
  double CurCost = Eval.eval(Cur);
  Env Best = Cur;
  double BestCost = CurCost;

  int Stuck = 0;
  while (Eval.budgetLeft()) {
    // Try a handful of neighbors; move to the best improving one.
    Env BestNbr = Cur;
    double BestNbrCost = Inf;
    for (int T = 0; T < 4 && Eval.budgetLeft(); ++T) {
      Env Nbr = Eval.neighbor(Cur, R);
      double Cost = Eval.eval(Nbr);
      if (Cost < BestNbrCost) {
        BestNbrCost = Cost;
        BestNbr = Nbr;
      }
    }
    if (BestNbrCost < CurCost) {
      Cur = BestNbr;
      CurCost = BestNbrCost;
      Stuck = 0;
    } else if (++Stuck >= 3) {
      // Random restart.
      Cur = Eval.randomPoint(Cur, R);
      CurCost = Eval.eval(Cur);
      Stuck = 0;
    }
    if (CurCost < BestCost) {
      BestCost = CurCost;
      Best = Cur;
    }
  }

  VariantSearchResult Result;
  Result.BestConfig = Best;
  Result.BestCost = BestCost;
  Result.Trace = Eval.takeTrace();
  Result.Trace.Seconds = Elapsed.seconds();
  return Result;
}

VariantSearchResult
eco::annealVariant(const DerivedVariant &Variant, EvalBackend &Backend,
                   const ParamBindings &Problem,
                   const HeuristicSearchOptions &Opts) {
  Timer Elapsed;
  HeuristicEvaluator Eval(Variant, Backend, Opts);
  Rng R(Opts.Seed);

  Env Cur = initialConfig(Variant, Backend.machine(), Problem);
  double CurCost = Eval.eval(Cur);
  Env Best = Cur;
  double BestCost = CurCost;

  // Temperature relative to the starting cost.
  double Temp = Opts.StartTemp *
                (CurCost < Inf ? CurCost : 1.0);
  while (Eval.budgetLeft()) {
    Env Nbr = Eval.neighbor(Cur, R);
    double Cost = Eval.eval(Nbr);
    if (Cost < Inf) {
      double Delta = Cost - CurCost;
      if (Delta <= 0 ||
          (Temp > 0 && R.nextDouble() < std::exp(-Delta / Temp))) {
        Cur = Nbr;
        CurCost = Cost;
      }
    }
    if (CurCost < BestCost) {
      BestCost = CurCost;
      Best = Cur;
    }
    Temp *= Opts.Cooling;
  }

  VariantSearchResult Result;
  Result.BestConfig = Best;
  Result.BestCost = BestCost;
  Result.Trace = Eval.takeTrace();
  Result.Trace.Seconds = Elapsed.seconds();
  return Result;
}
