//===- core/Variant.cpp - Parameterized code variants ---------------------===//

#include "core/Variant.h"
#include "ir/Verifier.h"
#include "support/StringUtils.h"
#include "transform/Prefetch.h"
#include "transform/ScalarReplace.h"
#include "transform/UnrollJam.h"

#include <algorithm>

using namespace eco;

std::vector<SymbolId> DerivedVariant::searchParams() const {
  std::vector<SymbolId> Params;
  for (const auto &[Var, Param] : TileParamOf)
    Params.push_back(Param);
  for (const UnrollSpec &U : Spec.Unrolls)
    Params.push_back(U.FactorParam);
  for (const PrefetchSpec &P : Prefetch)
    Params.push_back(P.DistanceParam);
  std::sort(Params.begin(), Params.end());
  Params.erase(std::unique(Params.begin(), Params.end()), Params.end());
  return Params;
}

LoopNest DerivedVariant::instantiate(const Env &Config,
                                     const MachineDesc &Machine) const {
  LoopNest Nest = Skeleton.clone();
  for (const UnrollSpec &U : Spec.Unrolls) {
    int Factor = static_cast<int>(std::max<int64_t>(
        Config.get(U.FactorParam), 1));
    unrollAndJam(Nest, U.Loop, Factor);
  }
  scalarReplaceInvariant(Nest, Spec.RegLoop);
  rotatingScalarReplace(Nest, Spec.RegLoop);

  int LineElems = static_cast<int>(Machine.cache(0).LineBytes / 8);
  for (const PrefetchSpec &P : Prefetch) {
    int64_t Dist = Config.get(P.DistanceParam);
    if (Dist > 0)
      insertPrefetch(Nest, P.Array, Spec.RegLoop,
                     static_cast<int>(Dist), std::max(LineElems, 1));
  }
  assert(verify(Nest).empty() && "instantiation broke IR invariants");
  return Nest;
}

std::string DerivedVariant::configString(const Env &Config) const {
  std::vector<std::string> Parts;
  for (SymbolId P : searchParams())
    Parts.push_back(Skeleton.Syms.name(P) + "=" +
                    std::to_string(Config.get(P)));
  return Spec.Name + "{" + join(Parts, ",") + "}";
}

std::string DerivedVariant::describe() const {
  const SymbolTable &Syms = Skeleton.Syms;
  std::string Out = "variant " + Spec.Name + "\n";

  // Register level row.
  std::vector<std::string> UnrollNames, UnrollParams;
  for (const UnrollSpec &U : Spec.Unrolls) {
    UnrollNames.push_back(Syms.name(U.Loop));
    UnrollParams.push_back(Syms.name(U.FactorParam));
  }
  Out += "  Reg : loop " + Syms.name(Spec.RegLoop) + ", unroll-and-jam " +
         join(UnrollNames, " and ") + " [" + join(UnrollParams, ",") + "]";
  if (Spec.RegArray >= 0)
    Out += ", keep " + Skeleton.array(Spec.RegArray).Name + " in registers";
  Out += "\n";

  for (const CacheLevelPlan &Level : Spec.CacheLevels) {
    std::vector<std::string> Tiled, TileParams;
    for (SymbolId V : Level.NewTiledLoops) {
      Tiled.push_back(Syms.name(V));
      TileParams.push_back(Syms.name(TileParamOf.at(V)));
    }
    Out += strformat("  L%u  : loop %s", Level.Level + 1,
                     Syms.name(Level.TheLoop).c_str());
    if (!Tiled.empty())
      Out += ", tile " + join(Tiled, " and ") + " [" +
             join(TileParams, ",") + "]";
    if (Level.WithCopy)
      Out += ", copy " + Skeleton.array(Level.RetainedArray).Name;
    else if (Level.RetainedArray >= 0)
      Out += ", retain " + Skeleton.array(Level.RetainedArray).Name;
    Out += "\n";
  }

  std::vector<std::string> OrderNames;
  for (SymbolId V : Spec.FinalOrder)
    OrderNames.push_back(Syms.name(V));
  Out += "  order: " + join(OrderNames, " ") + "\n";
  for (const Constraint &C : Constraints)
    Out += "  constraint: " + C.str(Syms) + "\n";
  if (!Prefetch.empty()) {
    std::vector<std::string> PfNames;
    for (const PrefetchSpec &P : Prefetch)
      PfNames.push_back(Skeleton.array(P.Array).Name);
    Out += "  prefetch candidates: " + join(PfNames, ", ") + "\n";
  }
  return Out;
}
