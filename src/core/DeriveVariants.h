//===- core/DeriveVariants.h - Phase 1: derive variants --------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 3 algorithm: walk the memory hierarchy from
/// registers outward; at each level pick the loop(s) carrying the most
/// unexploited reuse (ties fork variants), decide what to unroll / tile /
/// copy, and record parameter constraints from the footprint models.
///
/// Level rules (validated against Table 4 and Figures 1-2):
///  * registers: the most-temporal-reuse loop goes innermost (no spatial
///    tie-break), all other loops get unroll-and-jam, the retained family
///    is register-allocated, and the unroll product is bounded by the
///    register file;
///  * cache level with loop l: tile the not-yet-assigned loops other than
///    l, plus any already-placed loop inside l whose variable appears in
///    the retained family's subscripts (this is how TK joins both MM
///    variants); the retained family's tile footprint is bounded by
///    (n-1)/n of the level's capacity and its page footprint by the TLB;
///  * each cache level forks a with-copy variant when the retained tile
///    is fully tiled with offset-free subscripts (CreateCopyVariant);
///  * optionally forks a "TLB-pruned" tiling that leaves the contiguous
///    dimension untiled for rank >= 3 arrays — the paper's Jacobi pruning
///    discussion (Section 4.2), which yields exactly Figure 2(b)'s shape.
///
/// Loop order: levels push loops innermost-outward (register loop first);
/// tile-controlling loops are then ordered outermost — sorted by the
/// outermost level whose constraint involves their tile parameter, tie
/// broken so the control of the retained array's contiguous dimension
/// goes outer (the paper's TLB-guided control ordering).
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_DERIVEVARIANTS_H
#define ECO_CORE_DERIVEVARIANTS_H

#include "core/Variant.h"

namespace eco {

/// Knobs for variant derivation.
struct DeriveOptions {
  int64_t RepresentativeSize = 256; ///< problem size for trip-count models
  /// True once the caller pinned RepresentativeSize explicitly (via
  /// setRepresentativeSize). eco::tune substitutes the actual problem
  /// size only while this is false — sentinel-comparing against the
  /// default (the old behavior) stomped explicit overrides as soon as a
  /// second, larger problem binding was folded in.
  bool RepresentativeSizeSet = false;
  bool ForkCopyVariants = true;
  bool ForkPrunedTilings = true;
  unsigned MaxVariants = 24; ///< hard cap (derivation order is stable)

  /// Pins the representative size; eco::tune will not override it.
  void setRepresentativeSize(int64_t Size) {
    RepresentativeSize = Size;
    RepresentativeSizeSet = true;
  }
};

/// Derives the parameterized variants of \p Original for \p Machine.
///
/// If the nest is not provably fully permutable, a single untransformed
/// variant is returned (the compiler must not speculate).
///
/// \p RejectedOut (optional) receives the number of tiling/ordering
/// plans pruned because a transform refused them (TransformError) — the
/// derivation-time half of the paper's model-pruning story, surfaced so
/// TuneResult and the flight recorder can account for every plan.
std::vector<DerivedVariant> deriveVariants(const LoopNest &Original,
                                           const MachineDesc &Machine,
                                           const DeriveOptions &Opts = {},
                                           size_t *RejectedOut = nullptr);

} // namespace eco

#endif // ECO_CORE_DERIVEVARIANTS_H
