//===- core/Heuristics.h - AI-search alternatives --------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5 closes: "We anticipate the kind of domain
/// knowledge used in our approach could be effectively combined with such
/// heuristic search techniques" (simulated annealing, hill climbing,
/// genetic search). This module provides those comparison searches over
/// the *same* variant/configuration space and constraints:
///
///  * hillClimbVariant — steepest-neighbor descent with random restarts;
///  * annealVariant    — simulated annealing with a geometric cooling
///                       schedule.
///
/// Both start from the model heuristic's initial point, so "models +
/// heuristic search" hybrids are exactly what these implement; with the
/// models' constraints still pruning infeasible moves, they demonstrate
/// the combination the paper anticipates. bench_ablation compares them
/// against the staged guided search at equal budget.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_HEURISTICS_H
#define ECO_CORE_HEURISTICS_H

#include "core/Search.h"

namespace eco {

/// Knobs shared by the heuristic searches.
struct HeuristicSearchOptions {
  size_t Budget = 100;       ///< maximum evaluations
  uint64_t Seed = 42;        ///< deterministic randomness
  double StartTemp = 0.25;   ///< annealing: initial relative temperature
  double Cooling = 0.95;     ///< annealing: geometric cooling per step
  int MaxUnroll = 16;
  int64_t MaxTile = 1 << 16;
  int MaxPrefetchDistance = 64;
};

/// Steepest-descent hill climbing with random restarts when stuck.
VariantSearchResult hillClimbVariant(const DerivedVariant &Variant,
                                     EvalBackend &Backend,
                                     const ParamBindings &Problem,
                                     const HeuristicSearchOptions &Opts = {});

/// Simulated annealing over the same move set.
VariantSearchResult annealVariant(const DerivedVariant &Variant,
                                  EvalBackend &Backend,
                                  const ParamBindings &Problem,
                                  const HeuristicSearchOptions &Opts = {});

} // namespace eco

#endif // ECO_CORE_HEURISTICS_H
