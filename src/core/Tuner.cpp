//===- core/Tuner.cpp - The two-phase ECO facade ---------------------------===//

#include "core/Tuner.h"
#include "support/Timer.h"

#include <algorithm>

using namespace eco;

TuneResult eco::tune(const LoopNest &Original, EvalBackend &Backend,
                     const ParamBindings &Problem, const TuneOptions &Opts) {
  Timer Total;
  TuneResult Result;

  // Use the actual problem size as the representative size for the
  // reuse/footprint models when the caller did not override it.
  DeriveOptions DOpts = Opts.Derive;
  for (const auto &[Name, Value] : Problem) {
    SymbolId Id = Original.Syms.lookup(Name);
    if (Id >= 0 && Original.Syms.kind(Id) == SymbolKind::ProblemSize)
      DOpts.RepresentativeSize = std::max(DOpts.RepresentativeSize == 256
                                              ? Value
                                              : DOpts.RepresentativeSize,
                                          Value);
  }

  Result.Variants = deriveVariants(Original, Backend.machine(), DOpts);

  // Rank variants by their model-heuristic initial point (one evaluation
  // each) — the models' second pruning role.
  struct Ranked {
    size_t Index;
    double Cost;
  };
  std::vector<Ranked> Ranking;
  Result.Summaries.resize(Result.Variants.size());
  for (size_t VI = 0; VI < Result.Variants.size(); ++VI) {
    const DerivedVariant &V = Result.Variants[VI];
    Env Init = initialConfig(V, Backend.machine(), Problem);
    double Cost = std::numeric_limits<double>::infinity();
    if (V.feasible(Init)) {
      LoopNest Inst = V.instantiate(Init, Backend.machine());
      Cost = Backend.evaluate(Inst, Init);
    }
    ++Result.TotalPoints;
    Ranking.push_back({VI, Cost});
    Result.Summaries[VI].Name = V.Spec.Name;
    Result.Summaries[VI].HeuristicCost = Cost;
  }
  std::stable_sort(Ranking.begin(), Ranking.end(),
                   [](const Ranked &A, const Ranked &B) {
                     return A.Cost < B.Cost;
                   });

  // Full search on the top candidates.
  Result.BestCost = std::numeric_limits<double>::infinity();
  size_t ToSearch =
      std::min<size_t>(Opts.MaxVariantsToSearch, Ranking.size());
  for (size_t R = 0; R < ToSearch; ++R) {
    size_t VI = Ranking[R].Index;
    const DerivedVariant &V = Result.Variants[VI];
    VariantSearchResult SR = searchVariant(V, Backend, Problem, Opts.Search);

    VariantSummary &Sum = Result.Summaries[VI];
    Sum.Searched = true;
    Sum.BestCost = SR.BestCost;
    Sum.BestConfig = V.configString(SR.BestConfig);
    Sum.Points = SR.Trace.numEvaluations();
    Sum.Seconds = SR.Trace.Seconds;
    Result.TotalPoints += Sum.Points;

    if (SR.BestCost < Result.BestCost) {
      Result.BestCost = SR.BestCost;
      Result.BestVariant = static_cast<int>(VI);
      Result.BestConfig = SR.BestConfig;
    }
  }

  if (Result.BestVariant >= 0)
    Result.BestExecutable = Result.Variants[Result.BestVariant].instantiate(
        Result.BestConfig, Backend.machine());
  Result.TotalSeconds = Total.seconds();
  return Result;
}
