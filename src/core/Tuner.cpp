//===- core/Tuner.cpp - The two-phase ECO facade ---------------------------===//

#include "core/Tuner.h"
#include "obs/Event.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>

using namespace eco;

namespace {

/// Diffs the evaluator's cumulative telemetry rows against the snapshot
/// taken when the tune started, keeping only rows that changed — the
/// per-(variant, stage) activity attributable to this tune.
std::vector<StageTelemetry>
telemetryDelta(const std::vector<StageTelemetry> &Start,
               const std::vector<StageTelemetry> &End) {
  std::map<std::pair<std::string, std::string>, const StageTelemetry *>
      Base;
  for (const StageTelemetry &Row : Start)
    Base[{Row.Variant, Row.Stage}] = &Row;

  std::vector<StageTelemetry> Delta;
  for (const StageTelemetry &Row : End) {
    StageTelemetry D = Row;
    auto It = Base.find({Row.Variant, Row.Stage});
    if (It != Base.end()) {
      const StageTelemetry &B = *It->second;
      D.Evaluations -= B.Evaluations;
      D.CacheHits -= B.CacheHits;
      D.BackendSeconds -= B.BackendSeconds;
      D.HW = Row.HW.delta(B.HW);
    }
    if (D.Evaluations || D.CacheHits)
      Delta.push_back(std::move(D));
  }
  return Delta;
}

} // namespace

TuneResult eco::tune(const LoopNest &Original, Evaluator &Eval,
                     const ParamBindings &Problem, const TuneOptions &Opts) {
  Timer Total;
  obs::SpanScope TuneSpan("tune", "tune", Original.Name);
  EvalStats StartStats = Eval.stats();
  std::vector<StageTelemetry> StartTele = Eval.telemetry();
  TuneResult Result;

  // Reject unknown problem bindings before any work: every derived
  // variant's skeleton extends the original symbol table, so a name that
  // does not resolve here can never bind downstream either. Returning an
  // empty result (BestVariant = -1) keeps the failure recoverable.
  for (const auto &[Name, Value] : Problem) {
    (void)Value;
    if (Original.Syms.lookup(Name) < 0) {
      ECO_LOG(Error) << "problem binding '" << Name
                     << "' names no symbol of " << Original.Name
                     << "; cannot tune";
      return Result;
    }
  }

  // Use the actual problem size as the representative size for the
  // reuse/footprint models when the caller did not pin one explicitly.
  // (The old `== 256` sentinel only protected the first binding: any
  // later, larger binding re-entered the max() and stomped an explicit
  // caller override.)
  DeriveOptions DOpts = Opts.Derive;
  if (!DOpts.RepresentativeSizeSet) {
    bool Bound = false;
    for (const auto &[Name, Value] : Problem) {
      SymbolId Id = Original.Syms.lookup(Name);
      if (Id >= 0 && Original.Syms.kind(Id) == SymbolKind::ProblemSize) {
        DOpts.RepresentativeSize =
            Bound ? std::max(DOpts.RepresentativeSize, Value) : Value;
        Bound = true;
      }
    }
  }
  Result.RepresentativeSizeUsed = DOpts.RepresentativeSize;

  const bool Events = obs::eventsEnabled();
  if (Events) {
    Json F = Json::object();
    F.set("nest", Original.Name);
    Json P = Json::object();
    for (const auto &[Name, Value] : Problem)
      P.set(Name, Value);
    F.set("problem", std::move(P));
    F.set("representative_size", DOpts.RepresentativeSize);
    obs::publishEvent("tune.start", std::move(F));
  }

  {
    obs::SpanScope S("derive", "tune");
    Result.Variants = deriveVariants(Original, Eval.machine(), DOpts,
                                     &Result.VariantsRejected);
  }
  ECO_LOG(Info) << "derived " << Result.Variants.size()
                << " variants for " << Original.Name;
  if (Events)
    for (const DerivedVariant &V : Result.Variants) {
      Json F = Json::object();
      F.set("variant", V.Spec.Name);
      F.set("constraints", V.Constraints.size());
      obs::publishEvent("variant.derived", std::move(F));
    }

  // Rank variants by their model-heuristic initial point (one evaluation
  // each) — the models' second pruning role. The points are independent
  // across variants, so warm them as one batch before the sequential
  // ranking walk.
  struct Ranked {
    size_t Index;
    double Cost;
  };
  std::vector<Ranked> Ranking;
  Result.Summaries.resize(Result.Variants.size());

  std::vector<Env> InitConfigs(Result.Variants.size());
  {
    obs::SpanScope S("rank", "tune",
                     std::to_string(Result.Variants.size()) + " variants");
    std::vector<std::pair<const DerivedVariant *, Env>> RankBatch;
    for (size_t VI = 0; VI < Result.Variants.size(); ++VI) {
      const DerivedVariant &V = Result.Variants[VI];
      InitConfigs[VI] = initialConfig(V, Eval.machine(), Problem);
      if (V.feasible(InitConfigs[VI]))
        RankBatch.emplace_back(&V, InitConfigs[VI]);
    }
    if (RankBatch.size() > 1)
      Eval.warmMany(RankBatch, "rank");

    for (size_t VI = 0; VI < Result.Variants.size(); ++VI) {
      const DerivedVariant &V = Result.Variants[VI];
      double Cost = std::numeric_limits<double>::infinity();
      if (V.feasible(InitConfigs[VI]))
        Cost = Eval.evaluate(V, InitConfigs[VI], "rank").Cost;
      Ranking.push_back({VI, Cost});
      Result.Summaries[VI].Name = V.Spec.Name;
      Result.Summaries[VI].HeuristicCost = Cost;
      if (Events) {
        // The model-initial-point record: which configuration the models
        // proposed for this variant and what it cost.
        Json F = Json::object();
        F.set("variant", V.Spec.Name);
        F.set("config", V.configString(InitConfigs[VI]));
        F.set("cost", Cost);
        obs::publishEvent("variant.ranked", std::move(F));
      }
    }
  }
  std::stable_sort(Ranking.begin(), Ranking.end(),
                   [](const Ranked &A, const Ranked &B) {
                     return A.Cost < B.Cost;
                   });
  if (!Opts.PreferVariant.empty()) {
    for (size_t R = 0; R < Ranking.size(); ++R) {
      if (Result.Variants[Ranking[R].Index].Spec.Name != Opts.PreferVariant)
        continue;
      Ranked Preferred = Ranking[R];
      Ranking.erase(Ranking.begin() + static_cast<ptrdiff_t>(R));
      Ranking.insert(Ranking.begin(), Preferred);
      break;
    }
  }

  // Full search on the top candidates. Per-variant Points/CacheHits come
  // from the evaluator's stats deltas (not a hand-maintained count in
  // the search loop), so they stay correct under parallel evaluation.
  Result.BestCost = std::numeric_limits<double>::infinity();
  size_t ToSearch =
      std::min<size_t>(Opts.MaxVariantsToSearch, Ranking.size());
  const bool Metrics = obs::metricsEnabled();
  if (Metrics) {
    obs::metrics().gauge("tune.variants_total").set(
        static_cast<double>(ToSearch));
    obs::metrics().gauge("tune.variants_done").set(0);
  }
  // A caller-level ShouldStop also cancels inside each search: copy it
  // into the search hook when the caller did not set one explicitly.
  SearchOptions SOpts = Opts.Search;
  if (!SOpts.ShouldStop && Opts.ShouldStop)
    SOpts.ShouldStop = Opts.ShouldStop;
  for (size_t R = 0; R < ToSearch; ++R) {
    if (Opts.ShouldStop && Opts.ShouldStop()) {
      Result.Cancelled = true;
      ECO_LOG(Info) << "tune of " << Original.Name
                    << " cancelled after " << R << " of " << ToSearch
                    << " variant searches";
      break;
    }
    size_t VI = Ranking[R].Index;
    const DerivedVariant &V = Result.Variants[VI];
    VariantSummary &Sum = Result.Summaries[VI];

    VariantSearchResult SR;
    bool Restored =
        Opts.TryRestoreVariant && Opts.TryRestoreVariant(V, SR, Sum);
    if (!Restored) {
      obs::SpanScope S("search:" + V.Spec.Name, "tune");
      EvalStats Before = Eval.stats();
      Timer SearchTime;
      SR = searchVariant(V, Eval, Problem, SOpts);
      EvalStats After = Eval.stats();
      Sum.Points = After.Evaluations - Before.Evaluations;
      Sum.CacheHits = After.CacheHits - Before.CacheHits;
      Sum.Infeasible = SR.Infeasible;
      Sum.Seconds = SearchTime.seconds();
    } else {
      ECO_LOG(Info) << "variant " << V.Spec.Name
                    << " restored from checkpoint (cost "
                    << SR.BestCost << ")";
    }
    Sum.Searched = true;
    Sum.Restored = Restored;
    Sum.BestCost = SR.BestCost;
    Sum.BestConfig = V.configString(SR.BestConfig);
    if (!Restored && Opts.OnVariantSearched)
      Opts.OnVariantSearched(V, SR, Sum);
    if (Metrics)
      obs::metrics().gauge("tune.variants_done").set(
          static_cast<double>(R + 1));
    ECO_LOG(Debug) << "variant " << V.Spec.Name << " best cost "
                   << SR.BestCost << " after " << Sum.Points
                   << " points";

    if (SR.BestCost < Result.BestCost) {
      Result.BestCost = SR.BestCost;
      Result.BestVariant = static_cast<int>(VI);
      Result.BestConfig = SR.BestConfig;
      if (Events) {
        Json F = Json::object();
        F.set("variant", V.Spec.Name);
        F.set("config", Sum.BestConfig);
        F.set("cost", SR.BestCost);
        F.set("restored", Restored);
        obs::publishEvent("winner.updated", std::move(F));
      }
    }
  }

  // A cancellation during the last variant's search never reaches the
  // loop-top check; the flag must still reach the caller.
  if (!Result.Cancelled && Opts.ShouldStop && Opts.ShouldStop())
    Result.Cancelled = true;

  if (Result.BestVariant >= 0)
    Result.BestExecutable = Result.Variants[Result.BestVariant].instantiate(
        Result.BestConfig, Eval.machine());

  // Restored variants carry their recorded Points forward; everything
  // else is the evaluator's own ledger for this tune.
  EvalStats EndStats = Eval.stats();
  Result.TotalPoints = EndStats.Evaluations - StartStats.Evaluations;
  Result.TotalCacheHits = EndStats.CacheHits - StartStats.CacheHits;
  Result.ConfigsRejected = EndStats.Rejected - StartStats.Rejected;
  size_t RestoredPoints = 0;
  for (const VariantSummary &Sum : Result.Summaries) {
    if (Sum.Restored) {
      Result.TotalPoints += Sum.Points;
      RestoredPoints += Sum.Points;
    }
    Result.InfeasiblePruned += Sum.Infeasible;
  }
  Result.TotalSeconds = Total.seconds();
  Result.Telemetry = telemetryDelta(StartTele, Eval.telemetry());
  ECO_LOG(Info) << "tune complete: " << Result.TotalPoints << " points, "
                << Result.TotalCacheHits << " cache hits, best cost "
                << Result.BestCost;

  if (Events) {
    // Ranked-but-not-searched variants are the model-ranking prune.
    for (const VariantSummary &Sum : Result.Summaries)
      if (!Sum.Searched) {
        Json F = Json::object();
        F.set("variant", Sum.Name);
        F.set("heuristic_cost", Sum.HeuristicCost);
        F.set("reason", "model-ranking");
        obs::publishEvent("variant.pruned", std::move(F));
      }
    for (const StageTelemetry &Row : Result.Telemetry) {
      Json F = Json::object();
      F.set("variant", Row.Variant);
      F.set("stage", Row.Stage);
      F.set("evals", Row.Evaluations);
      F.set("cache_hits", Row.CacheHits);
      F.set("backend_s", Row.BackendSeconds);
      if (Row.HasHW) {
        F.set("loads", Row.HW.Loads);
        F.set("stores", Row.HW.Stores);
        F.set("l1_misses", Row.HW.l1Misses());
        F.set("l2_misses", Row.HW.l2Misses());
        F.set("tlb_misses", Row.HW.TlbMisses);
        F.set("cycles", Row.HW.cycles());
      }
      obs::publishEvent("stage.telemetry", std::move(F));
    }
    // The reconciliation record: every total the report and the event
    // audit check the stream against comes verbatim from TuneResult.
    Json F = Json::object();
    F.set("nest", Original.Name);
    F.set("points", Result.TotalPoints);
    F.set("restored_points", RestoredPoints);
    F.set("cache_hits", Result.TotalCacheHits);
    F.set("variants_derived", Result.Variants.size());
    size_t Searched = 0;
    for (const VariantSummary &Sum : Result.Summaries)
      Searched += Sum.Searched;
    F.set("variants_searched", Searched);
    F.set("variants_rejected", Result.VariantsRejected);
    F.set("configs_rejected", Result.ConfigsRejected);
    F.set("infeasible_pruned", Result.InfeasiblePruned);
    F.set("best_variant",
          Result.BestVariant >= 0 ? Result.best().Spec.Name : "");
    F.set("best_config",
          Result.BestVariant >= 0
              ? Result.best().configString(Result.BestConfig)
              : "");
    F.set("best_cost", Result.BestCost);
    F.set("wall_s", Result.TotalSeconds);
    F.set("cancelled", Result.Cancelled);
    obs::publishEvent("tune.done", std::move(F));
  }
  return Result;
}

TuneResult eco::tune(const LoopNest &Original, EvalBackend &Backend,
                     const ParamBindings &Problem, const TuneOptions &Opts) {
  DirectEvaluator Eval(Backend);
  return tune(Original, Eval, Problem, Opts);
}
