//===- core/Report.h - Human-readable tuning reports -----------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a TuneResult into a self-contained plain-text report: machine,
/// variant inventory with constraints (Table 4 style), model-ranking
/// outcome, per-variant search summaries, the winning configuration, and
/// the optimized code. Used by the CLI (--report) and by downstream users
/// who want an audit trail of what the tuner did.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_REPORT_H
#define ECO_CORE_REPORT_H

#include "core/Tuner.h"

#include <string>

namespace eco {

/// Options controlling report contents.
struct ReportOptions {
  bool IncludeVariantDetails = true; ///< full Table 4 style descriptions
  bool IncludeOptimizedCode = true;  ///< pseudo-code of the winner
  std::string CostUnit = "cycles";
};

/// Renders \p Result (produced by tune()) for \p Machine.
std::string renderReport(const TuneResult &Result,
                         const MachineDesc &Machine,
                         const ReportOptions &Opts = {});

} // namespace eco

#endif // ECO_CORE_REPORT_H
