//===- core/Variant.h - Parameterized code variants ------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *variant* is the unit the paper's two-phase strategy revolves around:
/// phase 1 derives a small set of parameterized variants with constraints
/// (Table 4), phase 2 searches each variant's parameter space empirically.
///
/// Concretely a DerivedVariant is:
///  * a declarative VariantSpec (which loop feeds each memory level, what
///    is unrolled / tiled / copied — one row group of Table 4),
///  * a *skeleton* LoopNest: tiled, permuted, copies inserted; tile sizes
///    remain symbolic parameters bound at execution time,
///  * symbolic search parameters: tile sizes, unroll factors, per-array
///    prefetch distances — all declared in the skeleton's symbol table so
///    one Env describes a complete search point,
///  * the constraints over those parameters (UI*UJ <= 32, TJ*TK <= 2048),
///  * instantiate(): applies the parameter-dependent transformations
///    (unroll-and-jam, scalar replacement, prefetching — Section 3.2) for
///    a concrete configuration, yielding an executable nest.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_VARIANT_H
#define ECO_CORE_VARIANT_H

#include "analysis/Footprint.h"
#include "ir/Loop.h"
#include "machine/MachineDesc.h"

#include <map>
#include <string>
#include <vector>

namespace eco {

/// One loop to unroll-and-jam, with its factor parameter.
struct UnrollSpec {
  SymbolId Loop = -1;
  SymbolId FactorParam = -1; ///< e.g. UI (declared in the skeleton)
};

/// One cache level's plan (a Table 4 row).
struct CacheLevelPlan {
  unsigned Level = 0;              ///< 0 = L1, 1 = L2, ...
  SymbolId TheLoop = -1;           ///< loop l whose reuse this level keeps
  std::vector<SymbolId> NewTiledLoops; ///< loops first tiled at this level
  int RetainedFamily = -1;
  ArrayId RetainedArray = -1;
  bool WithCopy = false;
  ArrayId CopyBuffer = -1;         ///< filled at skeleton build
  int CapConstraintIdx = -1;       ///< index into DerivedVariant::Constraints
  int TlbConstraintIdx = -1;
};

/// One array eligible for software prefetching.
struct PrefetchSpec {
  ArrayId Array = -1;
  SymbolId DistanceParam = -1; ///< 0 in a config means "no prefetch"
};

/// Declarative description of one variant.
struct VariantSpec {
  std::string Name;                 ///< "v1", "v2", ...
  SymbolId RegLoop = -1;            ///< innermost loop (register reuse)
  int RegFamily = -1;
  ArrayId RegArray = -1;
  std::vector<UnrollSpec> Unrolls;  ///< outer loops to unroll-and-jam
  std::vector<CacheLevelPlan> CacheLevels;
  std::vector<SymbolId> FinalOrder; ///< complete spine, outermost first
};

/// A fully materialized variant ready for empirical search.
class DerivedVariant {
public:
  VariantSpec Spec;
  LoopNest Skeleton;                 ///< tiled + permuted + copies
  std::vector<Constraint> Constraints;
  int RegConstraintIdx = -1;         ///< register-file constraint index
  std::vector<PrefetchSpec> Prefetch;
  std::map<SymbolId, SymbolId> TileParamOf; ///< element var -> tile param
  std::map<SymbolId, SymbolId> ControlVarOf;

  /// Every searchable parameter (tiles, unroll factors, prefetch
  /// distances) in a stable order.
  std::vector<SymbolId> searchParams() const;

  /// True if \p Config satisfies every constraint.
  bool feasible(const Env &Config) const {
    for (const Constraint &C : Constraints)
      if (!C.satisfied(Config))
        return false;
    return true;
  }

  /// Applies the parameter-dependent transformations for \p Config:
  /// unroll-and-jam (factors clamped to >= 1), scalar replacement (both
  /// flavors), and prefetch insertion for every array whose distance
  /// parameter is positive. Tile parameters stay symbolic — bind them in
  /// the Env used to execute the result.
  LoopNest instantiate(const Env &Config, const MachineDesc &Machine) const;

  /// Human-readable one-line description of a configuration.
  std::string configString(const Env &Config) const;

  /// Renders the variant's Table 4 style summary (levels, loops,
  /// transformations, parameters, constraints).
  std::string describe() const;
};

} // namespace eco

#endif // ECO_CORE_VARIANT_H
