//===- core/Search.h - Phase 2: model-guided empirical search --*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 3.2 search, per variant:
///
///  1. staged tiling search — stages follow the memory levels (register
///     factors first, then each cache level's tile parameters; parameters
///     shared between levels merge their stages). Each stage starts from
///     the model heuristic (footprint = effective capacity, register tile
///     = register file), then runs a binary tile-shape search (double one
///     dimension, halve another at constant footprint), halves the
///     footprint while that helps, and finishes with a small linear
///     refinement;
///  2. prefetch search — one data structure at a time: try distance 1,
///     climb while improving, keep or drop;
///  3. post-prefetch tile adjustment — grow the innermost loop's tile
///     (shrinking others to stay within constraints) while it helps.
///
/// Every evaluation instantiates the variant for the configuration's
/// unroll/prefetch values (cached), binds the tile parameters, and runs it
/// on an EvalBackend: the memory-hierarchy simulator (cycles) or the
/// native compile-and-run backend (seconds). Infeasible configurations
/// (violating any model constraint) are rejected without execution —
/// that is how the models prune the search space.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_SEARCH_H
#define ECO_CORE_SEARCH_H

#include "core/Variant.h"
#include "exec/Run.h"

#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace eco {

/// Where variants get executed and measured.
class EvalBackend {
public:
  virtual ~EvalBackend() = default;

  /// Executes \p Executable under \p Config (which binds problem sizes
  /// and tile parameters) and returns a cost — lower is better.
  virtual double evaluate(const LoopNest &Executable, const Env &Config) = 0;

  virtual const MachineDesc &machine() const = 0;
};

/// Runs variants on the memory-hierarchy simulator; cost = cycles.
class SimEvalBackend : public EvalBackend {
public:
  explicit SimEvalBackend(MachineDesc M) : Machine(std::move(M)) {}

  double evaluate(const LoopNest &Executable, const Env &Config) override;
  const MachineDesc &machine() const override { return Machine; }

private:
  MachineDesc Machine;
};

/// Wraps another backend to evaluate each configuration at several
/// problem sizes and sum the costs. The paper executes variants "with
/// representative input data sets" (plural); summing over a small size
/// set keeps the search from overfitting one size's cache-aliasing
/// accidents — important on the scaled machines, where many sizes are
/// near-pathological.
class MultiSizeEvalBackend : public EvalBackend {
public:
  /// \p SizeName names the problem-size symbol (e.g. "N").
  MultiSizeEvalBackend(EvalBackend &Inner, std::string SizeName,
                       std::vector<int64_t> Sizes)
      : Inner(Inner), SizeName(std::move(SizeName)),
        Sizes(std::move(Sizes)) {
    assert(!this->Sizes.empty() && "need at least one size");
  }

  double evaluate(const LoopNest &Executable, const Env &Config) override {
    SymbolId Id = Executable.Syms.lookup(SizeName);
    assert(Id >= 0 && "size symbol not found");
    double Total = 0;
    for (int64_t N : Sizes) {
      Env E = Config;
      E.set(Id, N);
      Total += Inner.evaluate(Executable, E);
    }
    return Total;
  }

  const MachineDesc &machine() const override { return Inner.machine(); }

private:
  EvalBackend &Inner;
  std::string SizeName;
  std::vector<int64_t> Sizes;
};

/// Runs variants natively (emit C + cc + dlopen); cost = seconds.
/// Requires a working host C compiler.
class NativeEvalBackend : public EvalBackend {
public:
  /// \p Machine describes the host (used for line sizes / heuristics).
  /// \p Repeats: best-of timing repetitions.
  NativeEvalBackend(MachineDesc M, int Repeats = 3)
      : Machine(std::move(M)), Repeats(Repeats) {}

  double evaluate(const LoopNest &Executable, const Env &Config) override;
  const MachineDesc &machine() const override { return Machine; }

private:
  MachineDesc Machine;
  int Repeats;
};

/// Search knobs.
struct SearchOptions {
  int MaxUnroll = 16;
  int MaxPrefetchDistance = 64;
  int64_t MaxTile = 1 << 16;
  bool SearchPrefetch = true;
  bool AdjustAfterPrefetch = true;
  int LinearRefineSteps = 2; ///< +-step attempts per parameter
};

/// One evaluated point.
struct SearchPoint {
  std::string Config;
  double Cost;
};

/// The paper reports search cost as points visited and wall time (4.3).
struct SearchTrace {
  std::vector<SearchPoint> Points; ///< unique evaluations, in order
  double Seconds = 0;
  size_t numEvaluations() const { return Points.size(); }
};

/// Outcome of searching one variant.
struct VariantSearchResult {
  Env BestConfig;
  double BestCost = std::numeric_limits<double>::infinity();
  SearchTrace Trace;
};

/// The model heuristic's initial configuration for \p Variant (stage
/// initial values; prefetch off). Public so the Tuner can rank variants
/// by their heuristic point before committing to full searches.
Env initialConfig(const DerivedVariant &Variant, const MachineDesc &Machine,
                  const ParamBindings &Problem);

/// The tile-parameter stages the search will walk, in order: one stage
/// per cache level, with stages merged when they share a parameter (the
/// paper's rule for parameters like TK that affect both L1 and L2 — "the
/// search of tiling parameters for both levels is performed in the same
/// stage"). Exposed for diagnostics and tests.
std::vector<std::vector<SymbolId>> searchStages(const DerivedVariant &V);

/// Runs the full Section 3.2 search for one variant.
VariantSearchResult searchVariant(const DerivedVariant &Variant,
                                  EvalBackend &Backend,
                                  const ParamBindings &Problem,
                                  const SearchOptions &Opts = {});

} // namespace eco

#endif // ECO_CORE_SEARCH_H
