//===- core/Search.h - Phase 2: model-guided empirical search --*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 3.2 search, per variant:
///
///  1. staged tiling search — stages follow the memory levels (register
///     factors first, then each cache level's tile parameters; parameters
///     shared between levels merge their stages). Each stage starts from
///     the model heuristic (footprint = effective capacity, register tile
///     = register file), then runs a binary tile-shape search (double one
///     dimension, halve another at constant footprint), halves the
///     footprint while that helps, and finishes with a small linear
///     refinement;
///  2. prefetch search — one data structure at a time: try distance 1,
///     climb while improving, keep or drop;
///  3. post-prefetch tile adjustment — grow the innermost loop's tile
///     (shrinking others to stay within constraints) while it helps.
///
/// Every evaluation instantiates the variant for the configuration's
/// unroll/prefetch values (cached), binds the tile parameters, and runs it
/// on an EvalBackend: the memory-hierarchy simulator (cycles) or the
/// native compile-and-run backend (seconds). Infeasible configurations
/// (violating any model constraint) are rejected without execution —
/// that is how the models prune the search space.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_SEARCH_H
#define ECO_CORE_SEARCH_H

#include "core/Variant.h"
#include "exec/Run.h"

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace eco {

/// Where variants get executed and measured.
class EvalBackend {
public:
  virtual ~EvalBackend() = default;

  /// Executes \p Executable under \p Config (which binds problem sizes
  /// and tile parameters) and returns a cost — lower is better.
  virtual double evaluate(const LoopNest &Executable, const Env &Config) = 0;

  virtual const MachineDesc &machine() const = 0;

  /// Returns an independent instance for another worker thread, or
  /// nullptr when this backend cannot be parallelized (the engine then
  /// degrades to sequential evaluation). Clones must produce bit-equal
  /// costs for equal inputs.
  virtual std::unique_ptr<EvalBackend> clone() const { return nullptr; }

  /// Extra text mixed into persistent cache keys. Backends whose cost
  /// for (nest, machine, config) depends on additional internal state
  /// (e.g. a multi-size wrapper's size set, or seconds vs. cycles units)
  /// must return a string identifying that state, so cached results are
  /// never served across incompatible backends.
  virtual std::string cacheSalt() const { return {}; }

  /// Hardware counters this backend accumulates across evaluations, or
  /// nullptr when it has none (the native backend measures wall time
  /// only). The engine snapshots the counters around each evaluation and
  /// attributes the delta to the evaluation's (variant, stage) bucket —
  /// the PAPI-per-configuration measurement of the paper's Table 3.
  /// Callers may only diff snapshots taken on the thread running this
  /// backend instance.
  virtual const HWCounters *hwCounters() const { return nullptr; }
};

/// Runs variants on the memory-hierarchy simulator; cost = cycles.
class SimEvalBackend : public EvalBackend {
public:
  explicit SimEvalBackend(MachineDesc M) : Machine(std::move(M)) {}

  double evaluate(const LoopNest &Executable, const Env &Config) override;
  const MachineDesc &machine() const override { return Machine; }

  /// The simulator is a deterministic pure function of (nest, config);
  /// a clone is just another instance over the same machine. (Clones do
  /// not share the accumulated counters.)
  std::unique_ptr<EvalBackend> clone() const override {
    return std::make_unique<SimEvalBackend>(Machine);
  }

  /// Counters summed over every evaluation this instance has run —
  /// benchmarks divide the access totals by backend wall time to report
  /// simulated accesses per second.
  const HWCounters &accumulatedCounters() const { return Accum; }

  const HWCounters *hwCounters() const override { return &Accum; }

private:
  MachineDesc Machine;
  HWCounters Accum;
};

/// Wraps another backend to evaluate each configuration at several
/// problem sizes and sum the costs. The paper executes variants "with
/// representative input data sets" (plural); summing over a small size
/// set keeps the search from overfitting one size's cache-aliasing
/// accidents — important on the scaled machines, where many sizes are
/// near-pathological.
class MultiSizeEvalBackend : public EvalBackend {
public:
  /// \p SizeName names the problem-size symbol (e.g. "N").
  MultiSizeEvalBackend(EvalBackend &Inner, std::string SizeName,
                       std::vector<int64_t> Sizes)
      : Inner(Inner), SizeName(std::move(SizeName)),
        Sizes(std::move(Sizes)) {
    assert(!this->Sizes.empty() && "need at least one size");
  }

  double evaluate(const LoopNest &Executable, const Env &Config) override {
    SymbolId Id = Executable.Syms.lookup(SizeName);
    assert(Id >= 0 && "size symbol not found");
    double Total = 0;
    for (int64_t N : Sizes) {
      Env E = Config;
      E.set(Id, N);
      Total += Inner.evaluate(Executable, E);
    }
    return Total;
  }

  const MachineDesc &machine() const override { return Inner.machine(); }

  /// Clonable iff the wrapped backend is; the clone owns its inner copy.
  std::unique_ptr<EvalBackend> clone() const override {
    std::unique_ptr<EvalBackend> InnerClone = Inner.clone();
    if (!InnerClone)
      return nullptr;
    auto Copy = std::make_unique<MultiSizeEvalBackend>(*InnerClone,
                                                       SizeName, Sizes);
    Copy->OwnedInner = std::move(InnerClone);
    return Copy;
  }

  std::string cacheSalt() const override {
    std::string Salt = "multisize:" + SizeName + "=";
    for (int64_t N : Sizes)
      Salt += std::to_string(N) + ",";
    return Salt + Inner.cacheSalt();
  }

  /// Counter deltas across a multi-size evaluation naturally sum over
  /// the size set, matching the summed cost.
  const HWCounters *hwCounters() const override {
    return Inner.hwCounters();
  }

private:
  EvalBackend &Inner;
  std::unique_ptr<EvalBackend> OwnedInner; ///< set on clones only
  std::string SizeName;
  std::vector<int64_t> Sizes;
};

/// Runs variants natively (emit C + cc + dlopen); cost = seconds.
/// Requires a working host C compiler.
class NativeEvalBackend : public EvalBackend {
public:
  /// \p Machine describes the host (used for line sizes / heuristics).
  /// \p Repeats: best-of timing repetitions.
  NativeEvalBackend(MachineDesc M, int Repeats = 3);

  double evaluate(const LoopNest &Executable, const Env &Config) override;
  const MachineDesc &machine() const override { return Machine; }

  /// Clones share this instance's compiled-kernel cache (mutex-guarded),
  /// so concurrent lanes compile each distinct source exactly once. The
  /// cache used to be a function-local static — unsynchronized mutable
  /// state shared by *every* backend in the process, a data race the
  /// moment the engine ran native evaluations on more than one lane.
  std::unique_ptr<EvalBackend> clone() const override;

  /// Native costs are wall seconds, not simulated cycles; never share
  /// cache entries with the simulator.
  std::string cacheSalt() const override {
    return "native:r" + std::to_string(Repeats);
  }

private:
  struct KernelCache; ///< defined in Search.cpp (needs NativeRunner.h)
  NativeEvalBackend(MachineDesc M, int Repeats,
                    std::shared_ptr<KernelCache> Cache);

  MachineDesc Machine;
  int Repeats;
  std::shared_ptr<KernelCache> Kernels; ///< shared across the clone chain
};

/// Search knobs.
struct SearchOptions {
  int MaxUnroll = 16;
  int MaxPrefetchDistance = 64;
  int64_t MaxTile = 1 << 16;
  bool SearchPrefetch = true;
  bool AdjustAfterPrefetch = true;
  int LinearRefineSteps = 2; ///< +-step attempts per parameter

  /// Warm start (the serve layer's cross-request reuse): (name, value)
  /// pairs from a previously tuned configuration. Search parameters
  /// named here (tile sizes, unroll factors, prefetch distances — looked
  /// up by name in the variant's skeleton) replace the model-heuristic
  /// initial point; names a variant does not declare, and non-search
  /// symbols such as problem sizes, are ignored. The seeded point is
  /// repaired back to feasibility exactly like the heuristic one.
  ParamBindings WarmStartConfig;
  /// When > 0 and WarmStartConfig seeded at least one parameter, each
  /// seeded tile/unroll parameter's stage search is bounded to
  /// [seed/Factor, seed*Factor] — the stored optimum anchors the window,
  /// so a re-tune near a known configuration converges in a fraction of
  /// the cold evaluation count. 0 keeps the global bounds.
  int WarmStartBoundFactor = 0;

  /// Cooperative cancellation (deadlines, shutdown): polled before every
  /// evaluation. Once it returns true the search stops exploring —
  /// remaining candidates read as infeasible — and returns the best
  /// configuration found so far. Empty = never cancel.
  std::function<bool()> ShouldStop;
};

/// One evaluated point. The first two fields are the classic (config,
/// cost) pair; the rest are filled when the point flows through an
/// Evaluator (engine or direct) and describe how it was obtained.
struct SearchPoint {
  std::string Config;
  double Cost = 0;
  std::string Stage;    ///< search stage that requested the point
  bool CacheHit = false;///< served from the evaluator's memo table
  double Millis = 0;    ///< backend wall time (0 for cache hits)
  int Lane = 0;         ///< engine lane (thread slot) that evaluated it
};

/// The paper reports search cost as points visited and wall time (4.3).
struct SearchTrace {
  std::vector<SearchPoint> Points; ///< unique evaluations, in order
  double Seconds = 0;
  size_t numEvaluations() const { return Points.size(); }
};

/// Outcome of searching one variant.
struct VariantSearchResult {
  Env BestConfig;
  double BestCost = std::numeric_limits<double>::infinity();
  SearchTrace Trace;
  /// Candidates the model constraints (or stage bounds) rejected without
  /// executing — the per-variant share of the paper's pruning story.
  /// Counted per rejection decision; a candidate revisited after an
  /// earlier rejection counts again (infeasible points are not memoized).
  size_t Infeasible = 0;
};

/// Outcome of one evaluation through an Evaluator.
struct EvalOutcome {
  double Cost = std::numeric_limits<double>::infinity();
  bool CacheHit = false;
  double Millis = 0; ///< backend wall time (0 for cache hits)
  int Lane = 0;      ///< lane that ran the backend (0 = caller thread)
};

/// Monotonic evaluator counters; callers diff snapshots to attribute
/// work to a search phase (the Tuner's per-variant Points accounting).
struct EvalStats {
  size_t Evaluations = 0;   ///< real backend executions
  size_t CacheHits = 0;     ///< evaluate() calls served from the memo
  size_t Rejected = 0;      ///< configs refused by a transform (inf cost)
  double BackendSeconds = 0;///< summed backend wall time (CPU seconds)
};

/// One (variant, stage) row of the evaluator's telemetry ledger: how many
/// points that stage of that variant's search evaluated, and the summed
/// hardware-counter deltas of those evaluations when the backend exposes
/// counters (Table 3 of the paper, per search stage instead of per final
/// configuration). Counts are cumulative over the evaluator's lifetime;
/// the Tuner diffs snapshots to report one tune.
struct StageTelemetry {
  std::string Variant;
  std::string Stage;
  size_t Evaluations = 0;
  size_t CacheHits = 0;
  double BackendSeconds = 0;
  HWCounters HW;     ///< summed deltas over real (non-cached) evaluations
  bool HasHW = false;///< backend exposed hwCounters()
};

/// How the search evaluates candidate configurations. The search's
/// decision loop stays strictly sequential; an Evaluator may additionally
/// accept *warm* batches — independent candidates a search step is about
/// to consider — and evaluate them concurrently so the subsequent
/// sequential decisions hit its memo table. Because every decision is
/// replayed in the original order against bit-identical costs, the chosen
/// configuration cannot depend on the degree of parallelism.
class Evaluator {
public:
  virtual ~Evaluator() = default;

  virtual const MachineDesc &machine() const = 0;

  /// Evaluates \p V at \p Config (instantiating as needed). The caller
  /// has already checked bounds and feasibility. \p Stage names the
  /// search phase for tracing.
  virtual EvalOutcome evaluate(const DerivedVariant &V, const Env &Config,
                               const std::string &Stage) = 0;

  /// Hint that each (variant, config) in \p Points is likely to be
  /// evaluated soon; implementations may evaluate them concurrently and
  /// memoize. Correctness never depends on warming.
  virtual void
  warmMany(const std::vector<std::pair<const DerivedVariant *, Env>> &Points,
           const std::string &Stage) {
    (void)Points;
    (void)Stage;
  }

  /// Convenience: warm several configs of a single variant.
  void warm(const DerivedVariant &V, const std::vector<Env> &Configs,
            const std::string &Stage) {
    std::vector<std::pair<const DerivedVariant *, Env>> Points;
    Points.reserve(Configs.size());
    for (const Env &E : Configs)
      Points.emplace_back(&V, E);
    warmMany(Points, Stage);
  }

  virtual EvalStats stats() const = 0;

  /// Cumulative per-(variant, stage) telemetry rows, sorted by (variant,
  /// stage). Default: none (the engine implements this; the sequential
  /// reference evaluator keeps only aggregate stats).
  virtual std::vector<StageTelemetry> telemetry() const { return {}; }
};

/// The sequential reference Evaluator: evaluates on the caller's thread
/// directly against one EvalBackend, memoizing per (variant, config) so
/// revisited points are free (the behavior the original search loop
/// hand-implemented). warmMany() is a no-op.
class DirectEvaluator : public Evaluator {
public:
  explicit DirectEvaluator(EvalBackend &Backend) : Backend(Backend) {}

  const MachineDesc &machine() const override { return Backend.machine(); }
  EvalOutcome evaluate(const DerivedVariant &V, const Env &Config,
                       const std::string &Stage) override;
  EvalStats stats() const override { return Stats; }

private:
  EvalBackend &Backend;
  EvalStats Stats;
  /// (variant identity, config string) -> cost.
  std::map<std::pair<const void *, std::string>, double> CostMemo;
  /// (variant identity, unroll/prefetch key) -> instantiated nest.
  std::map<std::pair<const void *, std::string>, LoopNest> InstMemo;
};

/// The unroll/prefetch portion of \p Config that determines instantiation
/// (tiles stay symbolic); evaluators key their instantiation memos on it.
std::string instantiationKey(const DerivedVariant &V, const Env &Config);

/// Publishes the canonical `config.evaluated` flight-recorder event for
/// one completed evaluation (fields: variant, stage, config, cost,
/// cache_hit, warm, ms, lane). Shared by every Evaluator so the event
/// schema cannot drift between the sequential and parallel paths. Call
/// only under obs::eventsEnabled().
void publishEvaluated(const DerivedVariant &V, const Env &Config,
                      const std::string &Stage, const EvalOutcome &O,
                      bool Warm = false);

/// The model heuristic's initial configuration for \p Variant (stage
/// initial values; prefetch off). Public so the Tuner can rank variants
/// by their heuristic point before committing to full searches.
Env initialConfig(const DerivedVariant &Variant, const MachineDesc &Machine,
                  const ParamBindings &Problem);

/// The tile-parameter stages the search will walk, in order: one stage
/// per cache level, with stages merged when they share a parameter (the
/// paper's rule for parameters like TK that affect both L1 and L2 — "the
/// search of tiling parameters for both levels is performed in the same
/// stage"). Exposed for diagnostics and tests.
std::vector<std::vector<SymbolId>> searchStages(const DerivedVariant &V);

/// Runs the full Section 3.2 search for one variant through \p Eval.
/// The decision sequence is identical for every Evaluator; a parallel
/// engine only changes how fast the costs materialize.
VariantSearchResult searchVariant(const DerivedVariant &Variant,
                                  Evaluator &Eval,
                                  const ParamBindings &Problem,
                                  const SearchOptions &Opts = {});

/// Convenience overload: sequential search directly on \p Backend.
VariantSearchResult searchVariant(const DerivedVariant &Variant,
                                  EvalBackend &Backend,
                                  const ParamBindings &Problem,
                                  const SearchOptions &Opts = {});

} // namespace eco

#endif // ECO_CORE_SEARCH_H
