//===- core/Tuner.h - The two-phase ECO facade -----------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level entry point tying the two phases together:
///
///   phase 1  deriveVariants  — models propose few variants + constraints
///   (model pruning)          — variants ranked at their heuristic initial
///                              configuration; only the most promising get
///                              a full search
///   phase 2  searchVariant   — guided empirical search per variant
///   select                   — best measured configuration wins
///
/// Typical use:
/// \code
///   LoopNest MM = makeMatMul();
///   SimEvalBackend Backend(MachineDesc::sgiR10000().scaledBy(16));
///   TuneResult R = tune(MM, Backend, {{"N", 128}});
///   // R.BestExecutable + R.BestConfig reproduce the winning schedule.
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_TUNER_H
#define ECO_CORE_TUNER_H

#include "core/DeriveVariants.h"
#include "core/Search.h"

#include <functional>

namespace eco {

/// Per-variant reporting.
struct VariantSummary {
  std::string Name;
  double HeuristicCost = 0; ///< cost at the model's initial configuration
  bool Searched = false;
  bool Restored = false;    ///< result came from a checkpoint, not a search
  double BestCost = 0;
  std::string BestConfig;
  size_t Points = 0;        ///< backend evaluations (from evaluator stats)
  size_t CacheHits = 0;     ///< memo hits during this variant's search
  size_t Infeasible = 0;    ///< candidates model constraints pruned unrun
  double Seconds = 0;       ///< wall-clock of this variant's search
};

/// Knobs for the full pipeline.
struct TuneOptions {
  DeriveOptions Derive;
  SearchOptions Search;
  /// Model pruning: how many variants (ranked by their heuristic initial
  /// point) receive a full empirical search.
  unsigned MaxVariantsToSearch = 4;

  /// Warm start: a variant name to search first, regardless of its
  /// heuristic rank. The serve layer passes the ConfigDB seed's winning
  /// variant here so a narrowed warm search (MaxVariantsToSearch = 1)
  /// cannot prune away the family the seeded configuration belongs to.
  /// Unknown names are ignored.
  std::string PreferVariant;

  /// Checkpoint hooks (installed by engine::TuneCheckpoint; both empty by
  /// default). TryRestoreVariant returns true when it can supply the
  /// variant's search result from a previous run, filling \p Result and
  /// the accounting fields of \p Summary; the tune then skips that
  /// search. OnVariantSearched fires after each completed search so the
  /// state survives a kill between variants.
  std::function<bool(const DerivedVariant &, VariantSearchResult &,
                     VariantSummary &)>
      TryRestoreVariant;
  std::function<void(const DerivedVariant &, const VariantSearchResult &,
                     const VariantSummary &)>
      OnVariantSearched;

  /// Cooperative cancellation (the serve layer's deadlines and graceful
  /// shutdown): polled before derivation, before each variant search,
  /// and inside the search's evaluation loop (it is copied into
  /// SearchOptions::ShouldStop when that hook is unset). Once it returns
  /// true the tune stops starting new work and returns the best result
  /// found so far with TuneResult::Cancelled set. Empty = never cancel.
  std::function<bool()> ShouldStop;
};

/// Outcome of a full tuning run.
struct TuneResult {
  std::vector<DerivedVariant> Variants;
  int BestVariant = -1;
  Env BestConfig;
  double BestCost = 0;
  LoopNest BestExecutable; ///< instantiated winner (tiles still symbolic)

  std::vector<VariantSummary> Summaries;
  size_t TotalPoints = 0;    ///< backend evaluations (Section 4.3)
  size_t TotalCacheHits = 0; ///< evaluator memo hits across the tune
  double TotalSeconds = 0;
  /// The pruning ledger (the per-tune Tables 3/4 story): derivation
  /// plans a transform refused, candidate configs the model constraints
  /// rejected without execution, and configs a transform refused at
  /// evaluation time. All three are "search space the models removed";
  /// the flight-recorder report reconciles against exactly these.
  size_t VariantsRejected = 0; ///< derivation-time TransformError prunes
  size_t InfeasiblePruned = 0; ///< constraint/bounds prunes, never run
  size_t ConfigsRejected = 0;  ///< evaluator-level TransformError prunes
  /// True when TuneOptions::ShouldStop fired: the result is the best
  /// configuration found before cancellation, not a completed tune.
  bool Cancelled = false;
  /// The representative size derivation actually ran with: the caller's
  /// pinned value (DeriveOptions::setRepresentativeSize) or the largest
  /// problem-size binding.
  int64_t RepresentativeSizeUsed = 0;

  /// Per-(variant, stage) telemetry for THIS tune (the evaluator's
  /// cumulative rows are diffed against a snapshot taken at entry).
  /// Empty when the evaluator does not implement telemetry(). Counts
  /// reconcile with TotalPoints/TotalCacheHits; rows with HasHW carry
  /// summed simulated hardware-counter deltas (Table 3-style data).
  std::vector<StageTelemetry> Telemetry;

  const DerivedVariant &best() const {
    assert(BestVariant >= 0 && "tuning failed");
    return Variants[BestVariant];
  }
};

/// Runs the complete two-phase optimization of \p Original through
/// \p Eval (a DirectEvaluator, or the engine's parallel EvalEngine) at
/// the given problem size(s). Point/time accounting in the result comes
/// from the evaluator's stats, so it stays correct when evaluations run
/// concurrently or are served from a persistent cache.
TuneResult tune(const LoopNest &Original, Evaluator &Eval,
                const ParamBindings &Problem, const TuneOptions &Opts = {});

/// Convenience overload: sequential tuning directly on \p Backend.
TuneResult tune(const LoopNest &Original, EvalBackend &Backend,
                const ParamBindings &Problem, const TuneOptions &Opts = {});

} // namespace eco

#endif // ECO_CORE_TUNER_H
