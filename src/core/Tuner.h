//===- core/Tuner.h - The two-phase ECO facade -----------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level entry point tying the two phases together:
///
///   phase 1  deriveVariants  — models propose few variants + constraints
///   (model pruning)          — variants ranked at their heuristic initial
///                              configuration; only the most promising get
///                              a full search
///   phase 2  searchVariant   — guided empirical search per variant
///   select                   — best measured configuration wins
///
/// Typical use:
/// \code
///   LoopNest MM = makeMatMul();
///   SimEvalBackend Backend(MachineDesc::sgiR10000().scaledBy(16));
///   TuneResult R = tune(MM, Backend, {{"N", 128}});
///   // R.BestExecutable + R.BestConfig reproduce the winning schedule.
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ECO_CORE_TUNER_H
#define ECO_CORE_TUNER_H

#include "core/DeriveVariants.h"
#include "core/Search.h"

namespace eco {

/// Knobs for the full pipeline.
struct TuneOptions {
  DeriveOptions Derive;
  SearchOptions Search;
  /// Model pruning: how many variants (ranked by their heuristic initial
  /// point) receive a full empirical search.
  unsigned MaxVariantsToSearch = 4;
};

/// Per-variant reporting.
struct VariantSummary {
  std::string Name;
  double HeuristicCost = 0; ///< cost at the model's initial configuration
  bool Searched = false;
  double BestCost = 0;
  std::string BestConfig;
  size_t Points = 0;
  double Seconds = 0;
};

/// Outcome of a full tuning run.
struct TuneResult {
  std::vector<DerivedVariant> Variants;
  int BestVariant = -1;
  Env BestConfig;
  double BestCost = 0;
  LoopNest BestExecutable; ///< instantiated winner (tiles still symbolic)

  std::vector<VariantSummary> Summaries;
  size_t TotalPoints = 0; ///< evaluations across all searches (Section 4.3)
  double TotalSeconds = 0;

  const DerivedVariant &best() const {
    assert(BestVariant >= 0 && "tuning failed");
    return Variants[BestVariant];
  }
};

/// Runs the complete two-phase optimization of \p Original for the
/// backend's machine at the given problem size(s).
TuneResult tune(const LoopNest &Original, EvalBackend &Backend,
                const ParamBindings &Problem, const TuneOptions &Opts = {});

} // namespace eco

#endif // ECO_CORE_TUNER_H
