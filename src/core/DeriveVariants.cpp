//===- core/DeriveVariants.cpp - Phase 1: derive variants -----------------===//

#include "core/DeriveVariants.h"
#include "analysis/Dependence.h"
#include "analysis/Reuse.h"
#include "obs/Event.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"
#include "transform/Copy.h"
#include "transform/Permute.h"
#include "transform/Tile.h"
#include "transform/TransformError.h"
#include "transform/Utils.h"

#include <algorithm>
#include <set>

using namespace eco;

namespace {

/// One partially expanded variant during level-by-level derivation.
struct Partial {
  SymbolId RegLoop = -1;
  int RegFamily = -1;
  ArrayId RegArray = -1;
  std::vector<SymbolId> UnrollLoops;
  std::vector<CacheLevelPlan> Levels;
  std::vector<SymbolId> PushOrder; ///< innermost first
  std::set<int> Exploited;
  std::vector<SymbolId> Remaining;
  std::set<SymbolId> Tiled;
};

/// Distinct loop variables in \p Ref's subscripts.
std::set<SymbolId> refVars(const ArrayRef &Ref) {
  std::set<SymbolId> Vars;
  for (const AffineExpr &S : Ref.Subs)
    for (SymbolId V : S.symbols())
      Vars.insert(V);
  return Vars;
}

/// The loop variable driving \p Ref's contiguous dimension (or -1).
SymbolId contigVarOf(const ArrayRef &Ref, const ArrayDecl &Decl) {
  unsigned D = Decl.Order == Layout::ColMajor ? 0 : Ref.rank() - 1;
  std::vector<SymbolId> Vars = Ref.Subs[D].symbols();
  return Vars.size() == 1 ? Vars.front() : -1;
}

/// Keeps \p Vars in the order they appear in \p Spine.
std::vector<SymbolId> inSpineOrder(const std::set<SymbolId> &Vars,
                                   const std::vector<SymbolId> &Spine) {
  std::vector<SymbolId> Out;
  for (SymbolId V : Spine)
    if (Vars.count(V))
      Out.push_back(V);
  return Out;
}

/// Control-loop naming: I -> II, KK-style doubling for one-letter names.
std::string controlName(const std::string &VarName) {
  return VarName.size() == 1 ? VarName + VarName : VarName + "_c";
}

/// True if the nest is a perfect spine: each level holds exactly one
/// loop until the innermost, whose body holds only statements. The
/// transformation pipeline (permutation in particular) requires this.
bool isPerfectSpine(const LoopNest &Nest) {
  const Body *Level = &Nest.Items;
  while (true) {
    size_t Loops = 0, Stmts = 0;
    for (const BodyItem &Item : *Level)
      (Item.isLoop() ? Loops : Stmts)++;
    if (Loops == 0)
      return true; // innermost: statements only
    if (Loops != 1 || Stmts != 0 || Level->size() != 1)
      return false;
    const Loop &L = (*Level)[0].loop();
    if (L.Unroll != 1 || !L.Epilogue.empty() || L.hasParamStep())
      return false;
    Level = &L.Items;
  }
}

} // namespace

std::vector<DerivedVariant>
eco::deriveVariants(const LoopNest &Original, const MachineDesc &Machine,
                    const DeriveOptions &Opts, size_t *RejectedOut) {
  if (RejectedOut)
    *RejectedOut = 0;
  // Bind problem sizes to the representative size for the reuse models.
  Env SizeEnv(Original.Syms.size());
  for (size_t S = 0; S < Original.Syms.size(); ++S)
    if (Original.Syms.kind(static_cast<SymbolId>(S)) ==
        SymbolKind::ProblemSize)
      SizeEnv.set(static_cast<SymbolId>(S), Opts.RepresentativeSize);

  int64_t LineElems = std::max<int64_t>(Machine.cache(0).LineBytes / 8, 1);
  ReuseAnalysis RA(Original, SizeEnv, LineElems);
  DependenceInfo DI = analyzeDependences(Original);
  std::vector<SymbolId> Spine = RA.loops();

  // Not provably permutable, or not a perfect nest (statements between
  // loops): the only safe variant is the original.
  if (!DI.FullyPermutable || Spine.empty() || !isPerfectSpine(Original)) {
    DerivedVariant DV;
    DV.Spec.Name = "v0-untransformed";
    DV.Spec.RegLoop = Spine.empty() ? -1 : Spine.back();
    DV.Spec.FinalOrder = Spine;
    DV.Skeleton = Original.clone();
    std::vector<DerivedVariant> Out;
    Out.push_back(std::move(DV));
    return Out;
  }

  // --- Register level -----------------------------------------------------
  std::vector<Partial> Partials;
  for (SymbolId L : RA.mostProfitableLoops(Spine, {},
                                           /*SpatialTieBreak=*/false)) {
    Partial P;
    P.RegLoop = L;
    std::vector<int> Fams = RA.mostProfitableRefs(L, {});
    if (!Fams.empty()) {
      P.RegFamily = Fams.front();
      P.RegArray = RA.familyRep(Fams.front()).Array;
      P.Exploited.insert(Fams.begin(), Fams.end());
    }
    for (SymbolId V : Spine)
      if (V != L) {
        P.UnrollLoops.push_back(V);
        P.Remaining.push_back(V);
      }
    P.PushOrder.push_back(L);
    Partials.push_back(std::move(P));
  }

  // --- Cache levels --------------------------------------------------------
  for (unsigned Level = 0; Level < Machine.numCacheLevels(); ++Level) {
    std::vector<Partial> Next;
    for (const Partial &P : Partials) {
      if (P.Remaining.empty()) {
        Next.push_back(P);
        continue;
      }

      // Which families are eligible? Unmapped first; if none carries
      // reuse, fall back to register-mapped families (paper Section
      // 3.1.1, MostProfitableLoops discussion).
      std::set<int> Used = P.Exploited;
      double MaxTW = 0;
      for (SymbolId V : P.Remaining)
        MaxTW = std::max(MaxTW, RA.temporalWeight(V, Used));
      if (MaxTW <= 0 && P.RegFamily >= 0)
        Used.erase(P.RegFamily);

      for (SymbolId L : RA.mostProfitableLoops(P.Remaining, Used)) {
        std::vector<int> Fams = RA.mostProfitableRefs(L, Used);
        int RetFam = Fams.empty() ? -1 : Fams.front();
        ArrayId RetArr =
            RetFam >= 0 ? RA.familyRep(RetFam).Array : ArrayId(-1);

        // Loops "inside l": already-pushed prefix if l is placed, else
        // everything placed so far plus the rest of Remaining.
        std::set<SymbolId> Inside;
        auto It = std::find(P.PushOrder.begin(), P.PushOrder.end(), L);
        if (It != P.PushOrder.end()) {
          Inside.insert(P.PushOrder.begin(), It);
        } else {
          Inside.insert(P.PushOrder.begin(), P.PushOrder.end());
          for (SymbolId V : P.Remaining)
            if (V != L)
              Inside.insert(V);
        }

        // Full tiling set.
        std::set<SymbolId> TileSet;
        for (SymbolId V : P.Remaining)
          if (V != L)
            TileSet.insert(V);
        std::set<SymbolId> RetVars;
        if (RetFam >= 0)
          RetVars = refVars(RA.familyRep(RetFam));
        for (SymbolId V : RetVars)
          if (Inside.count(V))
            TileSet.insert(V);
        for (SymbolId V : P.Tiled)
          TileSet.erase(V);
        TileSet.erase(L);

        // Tiling forks: full, plus the TLB-pruned set that leaves the
        // contiguous dimension of a rank>=3 retained array untiled.
        std::vector<std::set<SymbolId>> TileSets = {TileSet};
        if (Opts.ForkPrunedTilings && RetFam >= 0 &&
            RA.familyRep(RetFam).rank() >= 3) {
          SymbolId Contig = contigVarOf(RA.familyRep(RetFam),
                                        Original.array(RetArr));
          if (Contig >= 0 && TileSet.count(Contig)) {
            std::set<SymbolId> Pruned = TileSet;
            Pruned.erase(Contig);
            TileSets.push_back(std::move(Pruned));
          }
        }

        for (const std::set<SymbolId> &TS : TileSets) {
          // Copy fork: the copy region needs every retained dimension
          // tiled, so the with-copy variant extends the tiling set (this
          // is how the paper's MM v2 acquires its L2 tiling of J). The
          // family must be offset-free and not indexed by l itself.
          std::set<SymbolId> CopyTS = TS;
          bool CopyOk = Opts.ForkCopyVariants && RetFam >= 0 &&
                        RA.familyOffsetsAllZero(RetFam) && !RetVars.count(L);
          // The simple tile-region construction also needs every
          // subscript dimension to be exactly one loop variable (unit
          // coefficient, no constant — found by fuzzing: a +c offset
          // reads past the copied tile).
          if (CopyOk)
            for (const AffineExpr &Sub : RA.familyRep(RetFam).Subs) {
              std::vector<SymbolId> SubVars = Sub.symbols();
              if (SubVars.size() != 1 || Sub.coeff(SubVars[0]) != 1 ||
                  Sub.constTerm() != 0)
                CopyOk = false;
            }
          // Copy retargeting rewrites every reference to the array, so
          // the retained family must be the array's only access pattern
          // (found by fuzzing: a second family with different
          // coefficients would read outside the copied tile). CopyIn has
          // no copy-back, so written arrays are ineligible (also found
          // by fuzzing: a copied reduction output lost its updates).
          if (CopyOk)
            for (const RefInfo &RI : RA.refs())
              if (RI.Ref.Array == RetArr &&
                  (RI.Family != RetFam || RI.IsWrite))
                CopyOk = false;
          if (CopyOk)
            for (SymbolId V : RetVars)
              if (!P.Tiled.count(V))
                CopyTS.insert(V);

          for (bool Copy : CopyOk ? std::vector<bool>{false, true}
                                  : std::vector<bool>{false}) {
            const std::set<SymbolId> &UsedTS = Copy ? CopyTS : TS;
            Partial Q = P;
            CacheLevelPlan CL;
            CL.Level = Level;
            CL.TheLoop = L;
            CL.NewTiledLoops = inSpineOrder(UsedTS, Spine);
            CL.RetainedFamily = RetFam;
            CL.RetainedArray = RetArr;
            CL.WithCopy = Copy;
            Q.Levels.push_back(CL);
            Q.Tiled.insert(UsedTS.begin(), UsedTS.end());
            Q.Exploited.insert(Fams.begin(), Fams.end());
            for (SymbolId V : P.Remaining)
              if (V != L && std::find(Q.PushOrder.begin(),
                                      Q.PushOrder.end(),
                                      V) == Q.PushOrder.end())
                Q.PushOrder.push_back(V);
            if (std::find(Q.PushOrder.begin(), Q.PushOrder.end(), L) ==
                Q.PushOrder.end())
              Q.PushOrder.push_back(L);
            Q.Remaining.erase(std::find(Q.Remaining.begin(),
                                        Q.Remaining.end(), L));
            Next.push_back(std::move(Q));
            if (Next.size() >= Opts.MaxVariants)
              break;
          }
          if (Next.size() >= Opts.MaxVariants)
            break;
        }
        if (Next.size() >= Opts.MaxVariants)
          break;
      }
      if (Next.size() >= Opts.MaxVariants)
        break;
    }
    if (!Next.empty())
      Partials = std::move(Next);
  }

  // --- Materialize each partial into a DerivedVariant ---------------------
  std::vector<DerivedVariant> Variants;
  int Index = 1;
  for (const Partial &P : Partials) {
    try {
    DerivedVariant DV;
    DV.Spec.Name = "v" + std::to_string(Index++);
    DV.Spec.RegLoop = P.RegLoop;
    DV.Spec.RegFamily = P.RegFamily;
    DV.Spec.RegArray = P.RegArray;
    DV.Spec.CacheLevels = P.Levels;
    DV.Skeleton = Original.clone();
    LoopNest &Nest = DV.Skeleton;

    // Tile in level order.
    for (const CacheLevelPlan &CL : P.Levels)
      for (SymbolId V : CL.NewTiledLoops) {
        const std::string &VarName = Nest.Syms.name(V);
        TileResult TR =
            tileLoop(Nest, V, controlName(VarName), "T" + VarName);
        DV.TileParamOf[V] = TR.TileParam;
        DV.ControlVarOf[V] = TR.ControlVar;
      }

    // Order the tile-controlling loops: outermost = the control whose
    // parameter matters at the outermost level; ties resolved so the
    // retained array's contiguous-dimension control goes outer.
    struct ControlRank {
      SymbolId Var;
      int MaxLevel;
      int ContigBonus;
      int SpinePos;
    };
    std::vector<ControlRank> Ranks;
    for (const auto &[Var, Param] : DV.TileParamOf) {
      ControlRank R{Var, -1, 0, 0};
      for (const CacheLevelPlan &CL : P.Levels) {
        if (CL.RetainedFamily < 0)
          continue;
        const ArrayRef &Rep = RA.familyRep(CL.RetainedFamily);
        if (!refVars(Rep).count(Var))
          continue;
        int Lv = static_cast<int>(CL.Level);
        if (Lv >= R.MaxLevel) {
          R.MaxLevel = Lv;
          R.ContigBonus =
              contigVarOf(Rep, Original.array(CL.RetainedArray)) == Var ? 1
                                                                        : 0;
        }
      }
      R.SpinePos = static_cast<int>(
          std::find(Spine.begin(), Spine.end(), Var) - Spine.begin());
      Ranks.push_back(R);
    }
    std::sort(Ranks.begin(), Ranks.end(),
              [](const ControlRank &A, const ControlRank &B) {
                if (A.MaxLevel != B.MaxLevel)
                  return A.MaxLevel > B.MaxLevel;
                if (A.ContigBonus != B.ContigBonus)
                  return A.ContigBonus > B.ContigBonus;
                return A.SpinePos < B.SpinePos;
              });

    std::vector<SymbolId> FinalOrder;
    for (const ControlRank &R : Ranks)
      FinalOrder.push_back(DV.ControlVarOf.at(R.Var));
    // Element loops: pushes were innermost-first; unplaced loops (levels
    // exhausted early) go outermost in spine order.
    std::vector<SymbolId> Elements(P.PushOrder.rbegin(),
                                   P.PushOrder.rend());
    for (SymbolId V : P.Remaining)
      if (std::find(Elements.begin(), Elements.end(), V) ==
          Elements.end())
        Elements.insert(Elements.begin(), V);
    for (SymbolId V : Elements)
      FinalOrder.push_back(V);
    DV.Spec.FinalOrder = FinalOrder;
    permuteSpine(Nest, FinalOrder);

    // Insert copies (innermost governing control determines placement).
    static const char *BufferNames[] = {"P", "Q", "R", "S"};
    int BufIdx = 0;
    for (CacheLevelPlan &CL : DV.Spec.CacheLevels) {
      if (!CL.WithCopy)
        continue;
      const ArrayRef &Rep = RA.familyRep(CL.RetainedFamily);
      // Find the innermost control of the tile's dimensions, then the
      // next loop inside it in the final order.
      size_t InnermostPos = 0;
      for (SymbolId V : refVars(Rep)) {
        SymbolId CV = DV.ControlVarOf.at(V);
        size_t Pos = std::find(FinalOrder.begin(), FinalOrder.end(), CV) -
                     FinalOrder.begin();
        InnermostPos = std::max(InnermostPos, Pos);
      }
      assert(InnermostPos + 1 < FinalOrder.size() &&
             "copy has no loop to wrap");
      SymbolId BeforeLoop = FinalOrder[InnermostPos + 1];

      std::vector<CopyDimSpec> Dims;
      for (const AffineExpr &Sub : Rep.Subs) {
        std::vector<SymbolId> Vars = Sub.symbols();
        assert(Vars.size() == 1 && "copy tile needs single-variable dims");
        SymbolId V = Vars.front();
        SymbolId CV = DV.ControlVarOf.at(V);
        SymbolId T = DV.TileParamOf.at(V);
        // Size = min(T, original upper bounds + 1 - CV).
        Bound Size(AffineExpr::sym(T));
        const Loop *Element = Nest.findLoop(V);
        assert(Element && "tiled element loop vanished");
        for (const AffineExpr &Ub : Element->Upper.exprs())
          if (!Ub.uses(T))
            Size.clampTo(Ub + 1 - AffineExpr::sym(CV));
        Dims.push_back({AffineExpr::sym(CV), T, Size});
      }
      CL.CopyBuffer = applyCopy(Nest, CL.RetainedArray, BeforeLoop,
                                BufferNames[BufIdx++ % 4], Dims);
    }

    // Unroll-factor parameters.
    for (SymbolId V : P.UnrollLoops) {
      UnrollSpec U;
      U.Loop = V;
      U.FactorParam = Nest.declareParam("U" + Nest.Syms.name(V));
      DV.Spec.Unrolls.push_back(U);
    }

    // Prefetch candidates: arrays referenced in the register loop (after
    // copy retargeting), except the register-resident one.
    {
      std::set<ArrayId> Candidates;
      if (const Loop *RegL = Nest.findLoop(P.RegLoop))
        forEachStmtIn(const_cast<Loop *>(RegL)->Items, [&](Stmt &S) {
          S.forEachRef([&](ArrayRef &Ref, bool) {
            if (Ref.Array != P.RegArray)
              Candidates.insert(Ref.Array);
          });
        });
      for (ArrayId A : Candidates) {
        PrefetchSpec PF;
        PF.Array = A;
        PF.DistanceParam =
            Nest.declareParam("PF" + Nest.array(A).Name);
        DV.Prefetch.push_back(PF);
      }
    }

    // Constraints: registers, each cache level's footprint, TLB.
    if (P.RegFamily >= 0 && !DV.Spec.Unrolls.empty()) {
      ExtentMap RegExtents;
      for (const UnrollSpec &U : DV.Spec.Unrolls)
        RegExtents[U.Loop] = VarExtent::param(U.FactorParam);
      Constraint C;
      C.Terms.push_back(
          familyFootprintElems(RA.familyRep(P.RegFamily), RegExtents));
      C.Limit = Machine.FpRegisters;
      C.Note = "register file";
      DV.RegConstraintIdx = static_cast<int>(DV.Constraints.size());
      DV.Constraints.push_back(std::move(C));
    }
    for (CacheLevelPlan &CL : DV.Spec.CacheLevels) {
      if (CL.RetainedFamily < 0)
        continue;
      ExtentMap Extents;
      for (const UnrollSpec &U : DV.Spec.Unrolls)
        Extents[U.Loop] = VarExtent::param(U.FactorParam);
      for (const auto &[Var, Param] : DV.TileParamOf)
        Extents[Var] = VarExtent::param(Param); // tiles override unrolls
      const ArrayRef &Rep = RA.familyRep(CL.RetainedFamily);
      Constraint C;
      C.Terms.push_back(familyFootprintElems(Rep, Extents));
      C.Limit = effectiveCapacityElems(Machine.cache(CL.Level), 8);
      C.Note = strformat("L%u footprint of %s tile", CL.Level + 1,
                         Original.array(CL.RetainedArray).Name.c_str());
      CL.CapConstraintIdx = static_cast<int>(DV.Constraints.size());
      DV.Constraints.push_back(std::move(C));

      Constraint Tlb;
      Tlb.Terms.push_back(familyFootprintPages(
          Rep, Original.array(CL.RetainedArray), Extents, SizeEnv,
          Machine.Tlb.PageBytes));
      Tlb.Limit = Machine.Tlb.Entries;
      Tlb.Note = strformat("TLB pages of %s tile",
                           Original.array(CL.RetainedArray).Name.c_str());
      CL.TlbConstraintIdx = static_cast<int>(DV.Constraints.size());
      DV.Constraints.push_back(std::move(Tlb));
    }

    Variants.push_back(std::move(DV));
    } catch (const TransformError &E) {
      // A transform refused this partial's tiling/ordering plan: the plan
      // would have produced wrong code, so rejection is variant pruning,
      // not an error.
      ECO_LOG(Warn) << "variant pruned (illegal transform): " << E.what();
      if (RejectedOut)
        ++*RejectedOut;
      if (obs::metricsEnabled())
        obs::metrics().counter("transform.rejected").inc();
      if (obs::eventsEnabled()) {
        // Kept 1:1 with the transform.rejected counter bump above — the
        // event audit counts on that pairing.
        Json F = Json::object();
        F.set("plan", "v" + std::to_string(Index - 1));
        F.set("reason", std::string(E.what()));
        obs::publishEvent("variant.rejected", std::move(F));
      }
    }
  }

  // Every plan was rejected: fall back to the (always legal) original so
  // the tuner still has something to run.
  if (Variants.empty()) {
    DerivedVariant DV;
    DV.Spec.Name = "v0-untransformed";
    DV.Spec.RegLoop = Spine.empty() ? -1 : Spine.back();
    DV.Spec.FinalOrder = Spine;
    DV.Skeleton = Original.clone();
    Variants.push_back(std::move(DV));
  }
  return Variants;
}
