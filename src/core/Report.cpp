//===- core/Report.cpp - Human-readable tuning reports ---------------------===//

#include "core/Report.h"
#include "support/StringUtils.h"
#include "support/Table.h"

using namespace eco;

std::string eco::renderReport(const TuneResult &Result,
                              const MachineDesc &Machine,
                              const ReportOptions &Opts) {
  std::string Out;
  Out += "ECO tuning report\n";
  Out += "=================\n\n";
  Out += "machine: " + Machine.summary() + "\n";
  Out += strformat("variants derived: %zu   points evaluated: %zu   "
                   "wall time: %.1fs\n\n",
                   Result.Variants.size(), Result.TotalPoints,
                   Result.TotalSeconds);

  // Phase 1 inventory.
  if (Opts.IncludeVariantDetails) {
    Out += "Phase 1 - derived variants and constraints\n";
    Out += "------------------------------------------\n";
    for (const DerivedVariant &V : Result.Variants)
      Out += V.describe() + "\n";
  }

  // Phase 2 summary table.
  Out += "Phase 2 - model ranking and guided search\n";
  Out += "-----------------------------------------\n";
  Table T({"Variant", "Heuristic " + Opts.CostUnit, "Searched", "Best",
           "Points", "Seconds", "Best configuration"});
  for (const VariantSummary &S : Result.Summaries) {
    T.addRow({S.Name, strformat("%.6g", S.HeuristicCost),
              S.Searched ? "yes" : "pruned",
              S.Searched ? strformat("%.6g", S.BestCost) : "-",
              S.Searched ? std::to_string(S.Points) : "-",
              S.Searched ? strformat("%.1f", S.Seconds) : "-",
              S.Searched ? S.BestConfig : ""});
  }
  Out += T.render() + "\n";

  if (Result.BestVariant < 0) {
    Out += "RESULT: no feasible variant found\n";
    return Out;
  }

  Out += strformat("winner: %s at %.6g %s\n",
                   Result.best().configString(Result.BestConfig).c_str(),
                   Result.BestCost, Opts.CostUnit.c_str());

  // Stage telemetry (Table 3-style): where the search spent its
  // evaluations and what the simulated hardware counters saw per
  // (variant, stage) bucket.
  if (!Result.Telemetry.empty()) {
    Out += "\nStage telemetry\n";
    Out += "---------------\n";
    bool AnyHW = false;
    for (const StageTelemetry &Row : Result.Telemetry)
      AnyHW |= Row.HasHW;
    std::vector<std::string> Cols = {"Variant", "Stage", "Evals", "Hits",
                                     "BackendSec"};
    if (AnyHW) {
      Cols.insert(Cols.end(), {"Loads", "Stores", "Prefetch", "L1 miss",
                               "L2 miss", "TLB miss", "Cycles"});
    }
    Table T3(Cols);
    for (const StageTelemetry &Row : Result.Telemetry) {
      std::vector<std::string> Cells = {
          Row.Variant, Row.Stage, std::to_string(Row.Evaluations),
          std::to_string(Row.CacheHits),
          strformat("%.3f", Row.BackendSeconds)};
      if (AnyHW) {
        if (Row.HasHW) {
          Cells.insert(Cells.end(),
                       {std::to_string(Row.HW.Loads),
                        std::to_string(Row.HW.Stores),
                        std::to_string(Row.HW.Prefetches),
                        std::to_string(Row.HW.l1Misses()),
                        std::to_string(Row.HW.l2Misses()),
                        std::to_string(Row.HW.TlbMisses),
                        strformat("%.0f", Row.HW.cycles())});
        } else {
          Cells.insert(Cells.end(), {"-", "-", "-", "-", "-", "-", "-"});
        }
      }
      T3.addRow(Cells);
    }
    Out += T3.render();
  }

  if (Opts.IncludeOptimizedCode) {
    Out += "\nOptimized code (tile parameters symbolic)\n";
    Out += "------------------------------------------\n";
    Out += Result.BestExecutable.print();
  }
  return Out;
}
