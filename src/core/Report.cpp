//===- core/Report.cpp - Human-readable tuning reports ---------------------===//

#include "core/Report.h"
#include "support/StringUtils.h"
#include "support/Table.h"

using namespace eco;

std::string eco::renderReport(const TuneResult &Result,
                              const MachineDesc &Machine,
                              const ReportOptions &Opts) {
  std::string Out;
  Out += "ECO tuning report\n";
  Out += "=================\n\n";
  Out += "machine: " + Machine.summary() + "\n";
  Out += strformat("variants derived: %zu   points evaluated: %zu   "
                   "wall time: %.1fs\n\n",
                   Result.Variants.size(), Result.TotalPoints,
                   Result.TotalSeconds);

  // Phase 1 inventory.
  if (Opts.IncludeVariantDetails) {
    Out += "Phase 1 - derived variants and constraints\n";
    Out += "------------------------------------------\n";
    for (const DerivedVariant &V : Result.Variants)
      Out += V.describe() + "\n";
  }

  // Phase 2 summary table.
  Out += "Phase 2 - model ranking and guided search\n";
  Out += "-----------------------------------------\n";
  Table T({"Variant", "Heuristic " + Opts.CostUnit, "Searched", "Best",
           "Points", "Seconds", "Best configuration"});
  for (const VariantSummary &S : Result.Summaries) {
    T.addRow({S.Name, strformat("%.6g", S.HeuristicCost),
              S.Searched ? "yes" : "pruned",
              S.Searched ? strformat("%.6g", S.BestCost) : "-",
              S.Searched ? std::to_string(S.Points) : "-",
              S.Searched ? strformat("%.1f", S.Seconds) : "-",
              S.Searched ? S.BestConfig : ""});
  }
  Out += T.render() + "\n";

  if (Result.BestVariant < 0) {
    Out += "RESULT: no feasible variant found\n";
    return Out;
  }

  Out += strformat("winner: %s at %.6g %s\n",
                   Result.best().configString(Result.BestConfig).c_str(),
                   Result.BestCost, Opts.CostUnit.c_str());

  if (Opts.IncludeOptimizedCode) {
    Out += "\nOptimized code (tile parameters symbolic)\n";
    Out += "------------------------------------------\n";
    Out += Result.BestExecutable.print();
  }
  return Out;
}
