//===- core/Search.cpp - Phase 2: model-guided empirical search ----------===//

#include "core/Search.h"
#include "codegen/CEmitter.h"
#include "codegen/NativeRunner.h"
#include "obs/Event.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "support/Rng.h"
#include "support/Timer.h"
#include "transform/TransformError.h"

#include "support/Sync.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

using namespace eco;

double SimEvalBackend::evaluate(const LoopNest &Executable,
                                const Env &Config) {
  MemHierarchySim Sim(Machine);
  Executor Exec(Executable, Config, Sim);
  Exec.run();
  Accum += Sim.counters();
  return Sim.counters().cycles();
}

/// Compiled kernels cached by emitted source text: tile-size changes
/// reuse the binary (tiles are runtime parameters of the emitted
/// function). Shared by every clone in a chain and locked around lookup
/// and insert; entries are never erased, so a kernel pointer stays valid
/// after the lock drops (NativeKernel::run is const and reentrant —
/// callers pass their own parameter/array storage).
struct NativeEvalBackend::KernelCache {
  Mutex Mu{"exec.kernels"};
  std::map<std::string, std::unique_ptr<NativeKernel>> BySource
      ECO_GUARDED_BY(Mu);
};

NativeEvalBackend::NativeEvalBackend(MachineDesc M, int Repeats)
    : Machine(std::move(M)), Repeats(Repeats),
      Kernels(std::make_shared<KernelCache>()) {}

NativeEvalBackend::NativeEvalBackend(MachineDesc M, int Repeats,
                                     std::shared_ptr<KernelCache> Cache)
    : Machine(std::move(M)), Repeats(Repeats), Kernels(std::move(Cache)) {}

std::unique_ptr<EvalBackend> NativeEvalBackend::clone() const {
  return std::unique_ptr<EvalBackend>(
      new NativeEvalBackend(Machine, Repeats, Kernels));
}

double NativeEvalBackend::evaluate(const LoopNest &Executable,
                                   const Env &Config) {
  std::string Src = emitC(Executable, "eco_kernel");
  NativeKernel *Kernel = nullptr;
  {
    MutexLock Lock(Kernels->Mu);
    auto It = Kernels->BySource.find(Src);
    if (It == Kernels->BySource.end()) {
      // Compile under the lock: serializing the (rare, expensive) cc
      // invocations also guarantees each distinct source compiles once.
      std::string Error;
      std::unique_ptr<NativeKernel> Fresh =
          NativeKernel::compile(Executable, &Error);
      if (!Fresh) {
        // An infeasible point, not a fatal error: the search skips it.
        ECO_LOG(Warn) << "native evaluation rejected a point: " << Error;
        return std::numeric_limits<double>::infinity();
      }
      It = Kernels->BySource.emplace(std::move(Src), std::move(Fresh)).first;
    }
    Kernel = It->second.get();
  }

  std::vector<long> Params(Executable.Syms.size(), 0);
  for (size_t S = 0; S < Params.size(); ++S)
    if (S < Config.size())
      Params[S] = static_cast<long>(Config.get(static_cast<SymbolId>(S)));

  std::vector<std::vector<double>> Storage;
  std::vector<double *> Arrays;
  Rng R(99);
  for (size_t A = 0; A < Executable.Arrays.size(); ++A) {
    int64_t Elems = Executable.Arrays[A].numElements(Config);
    Storage.emplace_back(static_cast<size_t>(Elems));
    for (double &V : Storage.back())
      V = R.nextDouble();
    Arrays.push_back(Storage.back().data());
  }

  double Best = std::numeric_limits<double>::infinity();
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    Timer T;
    Kernel->run(Params.data(), Arrays.data());
    Best = std::min(Best, T.seconds());
  }
  return Best;
}

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Largest power of two <= max(V, 1).
int64_t floorPow2(int64_t V) {
  int64_t P = 1;
  while (P * 2 <= std::max<int64_t>(V, 1))
    P *= 2;
  return P;
}

/// The tile parameters a cache level's stage searches: its newly tiled
/// loops plus every tile parameter in its capacity constraint.
std::vector<SymbolId> stageTileParams(const DerivedVariant &V,
                                      const CacheLevelPlan &CL) {
  std::vector<SymbolId> Params;
  auto add = [&Params](SymbolId P) {
    if (std::find(Params.begin(), Params.end(), P) == Params.end())
      Params.push_back(P);
  };
  for (SymbolId Var : CL.NewTiledLoops)
    add(V.TileParamOf.at(Var));
  if (CL.CapConstraintIdx >= 0) {
    std::set<SymbolId> TileParams;
    for (const auto &[Var, Param] : V.TileParamOf)
      TileParams.insert(Param);
    for (const ProductTerm &T :
         V.Constraints[CL.CapConstraintIdx].Terms)
      for (SymbolId P : T.Params)
        if (TileParams.count(P))
          add(P);
  }
  return Params;
}

} // namespace

std::vector<std::vector<SymbolId>>
eco::searchStages(const DerivedVariant &V) {
  std::vector<std::vector<SymbolId>> Stages;
  for (const CacheLevelPlan &CL : V.Spec.CacheLevels) {
    std::vector<SymbolId> Params = stageTileParams(V, CL);
    if (Params.empty())
      continue;
    // Merge with any existing stage sharing a parameter.
    bool Merged = false;
    for (std::vector<SymbolId> &Stage : Stages) {
      bool Shares = false;
      for (SymbolId P : Params)
        if (std::find(Stage.begin(), Stage.end(), P) != Stage.end())
          Shares = true;
      if (!Shares)
        continue;
      for (SymbolId P : Params)
        if (std::find(Stage.begin(), Stage.end(), P) == Stage.end())
          Stage.push_back(P);
      Merged = true;
      break;
    }
    if (!Merged)
      Stages.push_back(std::move(Params));
  }
  return Stages;
}

Env eco::initialConfig(const DerivedVariant &V, const MachineDesc &Machine,
                       const ParamBindings &Problem) {
  const LoopNest &Nest = V.Skeleton;
  Env E(Nest.Syms.size());
  for (const auto &[Name, Value] : Problem) {
    SymbolId Id = Nest.Syms.lookup(Name);
    if (Id < 0) {
      // A misspelled binding must not become Env::set(-1, ...) — that is
      // UB once NDEBUG compiles the old assert out. Surface it and skip;
      // eco::tune additionally rejects such problems up front.
      ECO_LOG(Error) << "problem binding '" << Name
                     << "' names no symbol of variant " << V.Spec.Name
                     << "; ignoring it";
      continue;
    }
    E.set(Id, Value);
  }

  // Register stage: the initial register tile is the register file.
  int64_t RegLimit = V.RegConstraintIdx >= 0
                         ? V.Constraints[V.RegConstraintIdx].Limit
                         : Machine.FpRegisters;
  size_t NumUnrolls = V.Spec.Unrolls.size();
  if (NumUnrolls > 0) {
    // int64 arithmetic: with a large register limit (RegLimit is int64)
    // the old `1 << (Bits + 1)` overflowed int at Bits >= 30 — UB, and in
    // practice a negative value that kept the loop running forever.
    int Bits = 0;
    while ((int64_t(1) << (Bits + 1)) <= RegLimit && Bits < 62)
      ++Bits;
    for (size_t U = 0; U < NumUnrolls; ++U) {
      int Share = Bits / static_cast<int>(NumUnrolls) +
                  (U < Bits % NumUnrolls ? 1 : 0);
      int64_t Factor = std::min<int64_t>(int64_t(1) << Share, 16);
      E.set(V.Spec.Unrolls[U].FactorParam, std::max<int64_t>(Factor, 1));
    }
  }

  // Cache stages: footprint = effective capacity, split evenly in log
  // space across the stage's unset parameters.
  std::set<SymbolId> Assigned;
  for (const CacheLevelPlan &CL : V.Spec.CacheLevels) {
    std::vector<SymbolId> Params;
    for (SymbolId P : stageTileParams(V, CL))
      if (!Assigned.count(P))
        Params.push_back(P);
    if (Params.empty())
      continue;
    int64_t Limit = CL.CapConstraintIdx >= 0
                        ? V.Constraints[CL.CapConstraintIdx].Limit
                        : effectiveCapacityElems(Machine.cache(CL.Level), 8);
    // Base: the constraint's LHS with these parameters forced to 1.
    int64_t Base = 1;
    if (CL.CapConstraintIdx >= 0) {
      Env Probe = E;
      for (SymbolId P : Params)
        Probe.set(P, 1);
      Base = std::max<int64_t>(
          V.Constraints[CL.CapConstraintIdx].lhs(Probe), 1);
    }
    int64_t Residual = std::max<int64_t>(Limit / Base, 1);
    int Bits = 0;
    while ((int64_t(1) << (Bits + 1)) <= Residual)
      ++Bits;
    for (size_t P = 0; P < Params.size(); ++P) {
      int Share = Bits / static_cast<int>(Params.size()) +
                  (P < Bits % Params.size() ? 1 : 0);
      E.set(Params[P], std::max<int64_t>(int64_t(1) << Share, 1));
      Assigned.insert(Params[P]);
    }
  }

  // Any tile parameter not covered above (no constraint) gets the L1
  // heuristic size; prefetch distances start at 0 (off).
  for (const auto &[Var, Param] : V.TileParamOf)
    if (!Assigned.count(Param) && E.get(Param) == 0)
      E.set(Param, floorPow2(static_cast<int64_t>(std::sqrt(
                       effectiveCapacityElems(Machine.cache(0), 8)))));
  for (const PrefetchSpec &P : V.Prefetch)
    E.set(P.DistanceParam, 0);

  // Repair: halve the largest tile until every constraint holds.
  for (int Guard = 0; Guard < 64 && !V.feasible(E); ++Guard) {
    SymbolId Largest = -1;
    int64_t LargestVal = 1;
    for (const auto &[Var, Param] : V.TileParamOf)
      if (E.get(Param) > LargestVal) {
        LargestVal = E.get(Param);
        Largest = Param;
      }
    if (Largest < 0)
      break;
    E.set(Largest, LargestVal / 2);
  }
  return E;
}

namespace {

/// Drives the Section 3.2 search for one variant. The decision loop is
/// strictly sequential; before each step that generates several
/// independent candidates (binary shape-search siblings, linear
/// refinement neighbors, per-array prefetch probes), the candidate set
/// is handed to the Evaluator as a warm batch so a parallel engine can
/// evaluate them concurrently. Decisions then replay against memoized
/// costs, keeping the chosen configuration bit-identical to a fully
/// sequential run.
class Searcher {
public:
  Searcher(const DerivedVariant &V, Evaluator &Eval,
           const ParamBindings &Problem, const SearchOptions &Opts)
      : V(V), Eval(Eval), Opts(Opts) {
    Cur = initialConfig(V, Eval.machine(), Problem);
    HeuristicInit = Cur;
    for (const auto &[Var, Param] : V.TileParamOf)
      TileParams.push_back(Param);
    for (const UnrollSpec &U : V.Spec.Unrolls)
      UnrollParams.push_back(U.FactorParam);
    for (const PrefetchSpec &P : V.Prefetch)
      PfParams.push_back(P.DistanceParam);
    applyWarmStart();
  }

  VariantSearchResult run() {
    Timer Elapsed;
    {
      obs::SpanScope Span("stage:initial", "search", V.Spec.Name);
      Stage = "initial";
      CurCost = eval(Cur);
      if (WarmSeeded) {
        // Guarded warm start: the seed came from a *neighboring* problem
        // size, and across a cache cliff (e.g. a power-of-two N whose
        // conflict misses reshape the whole cost surface) it can drop
        // the greedy stages into a worse basin than the model's own
        // initial point. One extra evaluation buys the better of the two
        // starts; when the model point wins, the seed windows are
        // dropped too so the search explores at full cold width.
        double HeuristicCost = eval(HeuristicInit);
        if (HeuristicCost < CurCost) {
          ECO_LOG(Debug) << "variant " << V.Spec.Name
                         << ": warm-start seed loses to the model "
                            "initial point; reverting to a cold start";
          if (obs::eventsEnabled()) {
            Json F = Json::object();
            F.set("variant", V.Spec.Name);
            F.set("seed_cost", CurCost);
            F.set("model_cost", HeuristicCost);
            obs::publishEvent("warmstart.reverted", std::move(F));
          }
          Cur = HeuristicInit;
          CurCost = HeuristicCost;
          SeedBounds.clear();
        }
      }
    }
    // If even the heuristic point is infeasible something is off; bail
    // with what we have.
    if (CurCost >= Inf) {
      ECO_LOG(Warn) << "variant " << V.Spec.Name
                    << ": model-heuristic initial point is infeasible; "
                       "skipping its search";
    }
    if (CurCost < Inf) {
      // Stage 1: register factors.
      if (!UnrollParams.empty()) {
        obs::SpanScope Span("stage:register", "search", V.Spec.Name);
        Stage = "register";
        shapeSearch(UnrollParams);
        linearRefine(UnrollParams, 1);
      }
      // Stage 2..: tile stages.
      size_t StageIdx = 0;
      for (const std::vector<SymbolId> &S : searchStages(V)) {
        Stage = "tile" + std::to_string(StageIdx++);
        obs::SpanScope Span("stage:" + Stage, "search", V.Spec.Name);
        footprintSearch(S);
        linearRefine(S, lineElems());
      }
      // Stage 3: prefetch, one structure at a time.
      if (Opts.SearchPrefetch) {
        obs::SpanScope Span("stage:prefetch", "search", V.Spec.Name);
        Stage = "prefetch";
        prefetchSearch();
      }
      // Stage 4: post-prefetch tile adjustment.
      if (Opts.AdjustAfterPrefetch && anyPrefetchOn()) {
        obs::SpanScope Span("stage:adjust", "search", V.Spec.Name);
        Stage = "adjust";
        adjustInnermostTile();
      }
    }

    VariantSearchResult R;
    R.BestConfig = Cur;
    R.BestCost = CurCost;
    R.Trace = std::move(Trace);
    R.Trace.Seconds = Elapsed.seconds();
    R.Infeasible = Infeasible;
    return R;
  }

private:
  int64_t lineElems() const {
    return std::max<int64_t>(Eval.machine().cache(0).LineBytes / 8, 1);
  }

  /// Overlays SearchOptions::WarmStartConfig onto the model-heuristic
  /// initial point. Only this variant's search parameters participate
  /// (matched by name); problem sizes and unknown names pass through
  /// untouched. When WarmStartBoundFactor is set, each seeded tile or
  /// unroll parameter additionally gets a [seed/F, seed*F] stage bound.
  void applyWarmStart() {
    if (Opts.WarmStartConfig.empty())
      return;
    std::set<SymbolId> SearchParams;
    for (SymbolId P : TileParams)
      SearchParams.insert(P);
    for (SymbolId P : UnrollParams)
      SearchParams.insert(P);
    for (SymbolId P : PfParams)
      SearchParams.insert(P);
    bool Seeded = false;
    for (const auto &[Name, Value] : Opts.WarmStartConfig) {
      SymbolId Id = V.Skeleton.Syms.lookup(Name);
      if (Id < 0 || !SearchParams.count(Id) || Value < 0)
        continue;
      Cur.set(Id, Value);
      Seeded = true;
      if (Opts.WarmStartBoundFactor > 0 && Value > 0 &&
          !std::count(PfParams.begin(), PfParams.end(), Id)) {
        int64_t F = Opts.WarmStartBoundFactor;
        SeedBounds[Id] = {std::max<int64_t>(Value / F, 1), Value * F};
      }
    }
    if (!Seeded)
      return;
    WarmSeeded = true;
    // Repair: the seed came from a neighboring problem size, so it may
    // overflow a constraint here; halve the largest tile until feasible
    // (the same repair rule initialConfig applies to the heuristic).
    for (int Guard = 0; Guard < 64 && !V.feasible(Cur); ++Guard) {
      SymbolId Largest = -1;
      int64_t LargestVal = 1;
      for (SymbolId P : TileParams)
        if (Cur.get(P) > LargestVal) {
          LargestVal = Cur.get(P);
          Largest = P;
        }
      if (Largest < 0)
        break;
      Cur.set(Largest, LargestVal / 2);
    }
    // Feasibility repair may have pushed a seeded parameter below its
    // window; widen so the starting point itself is always in bounds.
    for (auto &[P, Window] : SeedBounds) {
      Window.first = std::min(Window.first, Cur.get(P));
      Window.second = std::max(Window.second, Cur.get(P));
    }
    if (obs::eventsEnabled()) {
      Json Params = Json::array();
      for (const auto &[Name, Value] : Opts.WarmStartConfig) {
        SymbolId Id = V.Skeleton.Syms.lookup(Name);
        if (Id < 0 || !SearchParams.count(Id) || Value < 0)
          continue;
        Json P = Json::object();
        P.set("name", Name);
        P.set("value", Cur.get(Id)); // post-repair starting value
        Params.push(std::move(P));
      }
      Json F = Json::object();
      F.set("variant", V.Spec.Name);
      F.set("params", std::move(Params));
      obs::publishEvent("warmstart.seeded", std::move(F));
      for (const auto &[P, Window] : SeedBounds) {
        Json B = Json::object();
        B.set("variant", V.Spec.Name);
        B.set("param", V.Skeleton.Syms.name(P));
        B.set("lo", Window.first);
        B.set("hi", Window.second);
        obs::publishEvent("stage.bounds", std::move(B));
      }
    }
  }

  bool withinBounds(const Env &E) const {
    for (SymbolId P : UnrollParams) {
      int64_t F = E.get(P);
      if (F < 1 || F > Opts.MaxUnroll)
        return false;
    }
    for (SymbolId P : TileParams) {
      int64_t T = E.get(P);
      if (T < 1 || T > Opts.MaxTile)
        return false;
    }
    for (SymbolId P : PfParams) {
      int64_t D = E.get(P);
      if (D < 0 || D > Opts.MaxPrefetchDistance)
        return false;
    }
    for (const auto &[P, Window] : SeedBounds) {
      int64_t T = E.get(P);
      if (T < Window.first || T > Window.second)
        return false;
    }
    return true;
  }

  double eval(const Env &E) {
    // Cooperative cancellation: once the caller's deadline fires, stop
    // spending evaluations — every further candidate reads as
    // infeasible, the stage loops run dry, and run() returns the best
    // configuration found so far.
    if (Opts.ShouldStop && Opts.ShouldStop())
      return Inf;
    if (!withinBounds(E) || !V.feasible(E)) {
      // The models (or seed windows) pruned this candidate without
      // spending an execution — the count the paper's Tables 3/4 story
      // is about.
      ++Infeasible;
      return Inf;
    }
    std::string Key = V.configString(E);
    auto Cached = CostCache.find(Key);
    if (Cached != CostCache.end())
      return Cached->second;

    EvalOutcome O = Eval.evaluate(V, E, Stage);
    CostCache[Key] = O.Cost;
    Trace.Points.push_back(
        {Key, O.Cost, Stage, O.CacheHit, O.Millis, O.Lane});
    return O.Cost;
  }

  /// Evaluates \p Cand; adopts it when strictly better.
  bool tryAccept(const Env &Cand) {
    double Cost = eval(Cand);
    if (Cost < CurCost) {
      Cur = Cand;
      CurCost = Cost;
      return true;
    }
    return false;
  }

  /// Hands evaluable candidates this step is about to consider to the
  /// Evaluator for concurrent (speculative) evaluation. Candidates the
  /// search has already costed, or that bounds/constraints would reject
  /// without executing, are filtered exactly as eval() would.
  void warmBatch(std::vector<Env> Cands) {
    if (Opts.ShouldStop && Opts.ShouldStop())
      return; // cancelled: don't fan speculative work out to the lanes
    std::vector<Env> Fresh;
    Fresh.reserve(Cands.size());
    for (Env &E : Cands) {
      if (!withinBounds(E) || !V.feasible(E))
        continue;
      if (CostCache.count(V.configString(E)))
        continue;
      Fresh.push_back(std::move(E));
    }
    if (Fresh.size() > 1)
      Eval.warm(V, Fresh, Stage);
  }

  /// All (double Up, halve Down) siblings reachable from \p From in one
  /// shape-search round — the independent candidate set a round scans.
  std::vector<Env> shapeSiblings(const Env &From,
                                 const std::vector<SymbolId> &Params) {
    std::vector<Env> Cands;
    for (SymbolId Up : Params) {
      for (SymbolId Down : Params) {
        if (Up == Down)
          continue;
        int64_t NewDown = std::max<int64_t>(From.get(Down) / 2, 1);
        if (NewDown == From.get(Down))
          continue;
        Env Cand = From;
        Cand.set(Up, From.get(Up) * 2);
        Cand.set(Down, NewDown);
        Cands.push_back(std::move(Cand));
      }
    }
    return Cands;
  }

  /// Binary tile-shape search at (roughly) constant footprint.
  void shapeSearch(const std::vector<SymbolId> &Params) {
    if (Params.size() < 2)
      return;
    bool Improved = true;
    while (Improved) {
      Improved = false;
      // Every sibling of the round's starting point is independent of
      // the others; evaluate them concurrently up front. Acceptances
      // mid-round move Cur, after which later candidates may miss the
      // memo — they are then evaluated on demand, still correctly.
      warmBatch(shapeSiblings(Cur, Params));
      for (SymbolId Up : Params) {
        for (SymbolId Down : Params) {
          if (Up == Down)
            continue;
          Env Cand = Cur;
          int64_t NewDown = std::max<int64_t>(Cur.get(Down) / 2, 1);
          if (NewDown == Cur.get(Down))
            continue;
          Cand.set(Up, Cur.get(Up) * 2);
          Cand.set(Down, NewDown);
          if (tryAccept(Cand))
            Improved = true;
        }
      }
    }
  }

  /// Shape search, then halve the footprint (largest parameter) while
  /// the re-searched smaller footprint keeps winning.
  void footprintSearch(const std::vector<SymbolId> &Params) {
    shapeSearch(Params);
    while (true) {
      // Halve the largest parameter.
      SymbolId Largest = -1;
      int64_t LargestVal = 1;
      for (SymbolId P : Params)
        if (Cur.get(P) > LargestVal) {
          LargestVal = Cur.get(P);
          Largest = P;
        }
      if (Largest < 0)
        return;
      Env Shrunk = Cur;
      Shrunk.set(Largest, LargestVal / 2);

      Env PrevBest = Cur;
      double PrevCost = CurCost;
      double ShrunkCost = eval(Shrunk);
      if (ShrunkCost >= Inf)
        return;
      Cur = Shrunk;
      CurCost = ShrunkCost;
      shapeSearch(Params);
      if (CurCost >= PrevCost) {
        Cur = PrevBest;
        CurCost = PrevCost;
        return;
      }
    }
  }

  /// Small +-step walk on each parameter.
  void linearRefine(const std::vector<SymbolId> &Params, int64_t Step) {
    // The first +-step neighbor of every parameter is independent of the
    // others' outcomes; warm them as one batch.
    std::vector<Env> FirstSteps;
    for (SymbolId P : Params) {
      for (int64_t Dir : {+1, -1}) {
        Env Cand = Cur;
        Cand.set(P, Cur.get(P) + Dir * Step);
        FirstSteps.push_back(std::move(Cand));
      }
    }
    warmBatch(std::move(FirstSteps));
    for (SymbolId P : Params) {
      for (int64_t Dir : {+1, -1}) {
        for (int S = 0; S < Opts.LinearRefineSteps; ++S) {
          Env Cand = Cur;
          Cand.set(P, Cur.get(P) + Dir * Step);
          if (!tryAccept(Cand))
            break;
        }
      }
    }
  }

  /// Try prefetching each data structure, one at a time: distance 1,
  /// then climb while improving; keep or drop (Section 3.2).
  void prefetchSearch() {
    // The per-array distance-1 probes are independent candidates off the
    // post-tiling configuration (most arrays keep prefetch off, so the
    // probes usually are exactly what the sequential walk evaluates).
    std::vector<Env> Probes;
    for (SymbolId P : PfParams) {
      Env Cand = Cur;
      Cand.set(P, 1);
      Probes.push_back(std::move(Cand));
    }
    warmBatch(std::move(Probes));
    for (SymbolId P : PfParams) {
      Env Cand = Cur;
      Cand.set(P, 1);
      if (!tryAccept(Cand))
        continue; // no benefit: leave off
      for (int64_t D = 2; D <= Opts.MaxPrefetchDistance; D *= 2) {
        Env Climb = Cur;
        Climb.set(P, D);
        if (!tryAccept(Climb))
          break;
      }
    }
  }

  bool anyPrefetchOn() const {
    for (SymbolId P : PfParams)
      if (Cur.get(P) > 0)
        return true;
    return false;
  }

  /// Grow the innermost loop's tile (prefetch works better with longer
  /// inner streams), shrinking other tiles to stay feasible.
  void adjustInnermostTile() {
    auto It = V.TileParamOf.find(V.Spec.RegLoop);
    if (It == V.TileParamOf.end())
      return;
    SymbolId Inner = It->second;
    while (true) {
      Env Cand = Cur;
      Cand.set(Inner, Cur.get(Inner) * 2);
      // Restore feasibility by halving the largest other tile.
      for (int Guard = 0; Guard < 32 && !V.feasible(Cand); ++Guard) {
        SymbolId Largest = -1;
        int64_t LargestVal = 1;
        for (SymbolId P : TileParams)
          if (P != Inner && Cand.get(P) > LargestVal) {
            LargestVal = Cand.get(P);
            Largest = P;
          }
        if (Largest < 0)
          break;
        Cand.set(Largest, LargestVal / 2);
      }
      if (!tryAccept(Cand))
        return;
    }
  }

  const DerivedVariant &V;
  Evaluator &Eval;
  SearchOptions Opts;

  Env Cur;
  double CurCost = Inf;
  std::string Stage;
  SearchTrace Trace;
  std::map<std::string, double> CostCache;
  std::vector<SymbolId> TileParams, UnrollParams, PfParams;
  /// The model-heuristic initial point, kept for the guarded warm start.
  Env HeuristicInit;
  /// True when applyWarmStart() actually overlaid at least one value.
  bool WarmSeeded = false;
  /// Warm-start stage bounds: seeded param -> [lo, hi] window.
  std::map<SymbolId, std::pair<int64_t, int64_t>> SeedBounds;
  /// Candidates rejected by bounds/constraints without execution.
  size_t Infeasible = 0;
};

} // namespace

std::string eco::instantiationKey(const DerivedVariant &V,
                                  const Env &Config) {
  // Instantiation depends only on unroll factors and prefetch
  // distances; tiles stay symbolic.
  std::string Key;
  for (const UnrollSpec &U : V.Spec.Unrolls)
    Key += std::to_string(Config.get(U.FactorParam)) + ",";
  for (const PrefetchSpec &P : V.Prefetch)
    Key += std::to_string(Config.get(P.DistanceParam)) + ",";
  return Key;
}

void eco::publishEvaluated(const DerivedVariant &V, const Env &Config,
                           const std::string &Stage, const EvalOutcome &O,
                           bool Warm) {
  Json F = Json::object();
  F.set("variant", V.Spec.Name);
  F.set("stage", Stage);
  F.set("config", V.configString(Config));
  F.set("cost", O.Cost);
  F.set("cache_hit", O.CacheHit);
  if (Warm)
    F.set("warm", true);
  F.set("ms", O.Millis);
  F.set("lane", O.Lane);
  obs::publishEvent("config.evaluated", std::move(F));
}

EvalOutcome DirectEvaluator::evaluate(const DerivedVariant &V,
                                      const Env &Config,
                                      const std::string &Stage) {
  EvalOutcome O;
  std::pair<const void *, std::string> CostKey{&V, V.configString(Config)};
  auto Cached = CostMemo.find(CostKey);
  if (Cached != CostMemo.end()) {
    ++Stats.CacheHits;
    O.Cost = Cached->second;
    O.CacheHit = true;
    if (obs::eventsEnabled())
      publishEvaluated(V, Config, Stage, O);
    return O;
  }

  std::pair<const void *, std::string> InstKey{&V,
                                               instantiationKey(V, Config)};
  auto InstIt = InstMemo.find(InstKey);
  if (InstIt == InstMemo.end()) {
    try {
      InstIt = InstMemo
                   .emplace(std::move(InstKey),
                            V.instantiate(Config, Backend.machine()))
                   .first;
    } catch (const TransformError &E) {
      // An illegal unroll/prefetch request at this point: treat like a
      // failed native compile — infinite cost, search moves on.
      ECO_LOG(Warn) << "config rejected (illegal transform): " << E.what();
      ++Stats.Rejected;
      if (obs::metricsEnabled())
        obs::metrics().counter("transform.rejected").inc();
      if (obs::eventsEnabled()) {
        // Paired 1:1 with the transform.rejected bump: the event audit
        // reconciles config.rejected events against that counter.
        Json F = Json::object();
        F.set("variant", V.Spec.Name);
        F.set("stage", Stage);
        F.set("config", V.configString(Config));
        F.set("reason", std::string(E.what()));
        obs::publishEvent("config.rejected", std::move(F));
      }
      O.Cost = std::numeric_limits<double>::infinity();
      CostMemo.emplace(std::move(CostKey), O.Cost);
      return O;
    }
  }

  Timer T;
  O.Cost = Backend.evaluate(InstIt->second, Config);
  O.Millis = T.millis();
  ++Stats.Evaluations;
  Stats.BackendSeconds += O.Millis / 1e3;
  CostMemo.emplace(std::move(CostKey), O.Cost);
  if (obs::eventsEnabled())
    publishEvaluated(V, Config, Stage, O);
  return O;
}

VariantSearchResult eco::searchVariant(const DerivedVariant &Variant,
                                       Evaluator &Eval,
                                       const ParamBindings &Problem,
                                       const SearchOptions &Opts) {
  return Searcher(Variant, Eval, Problem, Opts).run();
}

VariantSearchResult eco::searchVariant(const DerivedVariant &Variant,
                                       EvalBackend &Backend,
                                       const ParamBindings &Problem,
                                       const SearchOptions &Opts) {
  DirectEvaluator Eval(Backend);
  return Searcher(Variant, Eval, Problem, Opts).run();
}
