//===- obs/Metrics.h - Thread-safe metrics registry ------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuner's metrics system: named Counters (monotonic uint64), Gauges
/// (settable/addable doubles), and Histograms (fixed log2-scale buckets)
/// collected in a thread-safe MetricsRegistry that snapshots to JSON.
/// Instrumented code writes through the process-wide registry
/// (obs::metrics()) guarded by obs::metricsEnabled() — one relaxed atomic
/// load when observability is off, so the hot path pays nothing unless
/// the user asked for a metrics dump (--metrics-file / --progress).
///
/// All metric objects are updated with atomics only (no per-metric lock),
/// so concurrent engine lanes increment freely; the registry's mutex
/// covers only name lookup/creation, and returned references stay valid
/// for the registry's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_OBS_METRICS_H
#define ECO_OBS_METRICS_H

#include "support/Json.h"
#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eco {
namespace obs {

/// Monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { Val.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Val{0};
};

/// A point-in-time double; add() accumulates (CAS loop, exact for the
/// integral-valued sums we keep, e.g. summed stall cycles).
class Gauge {
public:
  void set(double V) { Val.store(V, std::memory_order_relaxed); }
  void add(double Delta) {
    double Cur = Val.load(std::memory_order_relaxed);
    while (!Val.compare_exchange_weak(Cur, Cur + Delta,
                                      std::memory_order_relaxed))
      ;
  }
  double value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0, std::memory_order_relaxed); }

private:
  std::atomic<double> Val{0};
};

/// Fixed log2-scale histogram: bucket I holds values in
/// (bound(I-1), bound(I)] with bound(I) = FirstBound * 2^I, plus one
/// overflow bucket past the last bound. Values <= FirstBound land in
/// bucket 0. Records are lock-free (atomic buckets + CAS'd sum/min/max).
class Histogram {
public:
  /// \p FirstBound: upper bound of bucket 0 (must be > 0).
  /// \p NumBuckets: bounded buckets; one overflow bucket is added.
  explicit Histogram(double FirstBound = 1e-3, unsigned NumBuckets = 40);

  void record(double V);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Smallest/largest recorded value (0 when empty).
  double minValue() const;
  double maxValue() const;

  /// Bounded buckets only (excludes overflow).
  unsigned numBuckets() const { return NumBounded; }
  /// Upper bound of bucket \p I (I < numBuckets()).
  double bucketBound(unsigned I) const;
  /// Count in bucket \p I; I == numBuckets() addresses the overflow
  /// bucket.
  uint64_t bucketCount(unsigned I) const;

  /// The value at quantile \p Q in [0, 1], derived exactly from the
  /// log2 bucket counts: the rank-th record (rank = ceil(Q * count),
  /// at least 1) is located by a cumulative walk and the containing
  /// bucket's upper bound is returned, clamped to [minValue, maxValue].
  ///
  /// Error bound: the true quantile lies inside the same bucket, whose
  /// bounds differ by exactly 2x — so the returned value overestimates
  /// the true quantile by at most a factor of 2 (and is exact whenever
  /// the clamp to min/max applies, e.g. single-valued data). Returns 0
  /// when empty. Under concurrent record() the result reflects some
  /// recent state, like every other accessor.
  double quantile(double Q) const;

  /// {"count":..,"sum":..,"min":..,"max":..,"firstBound":..,
  ///  "buckets":[..], "overflow":.., "p50":.., "p95":.., "p99":..}
  /// — buckets with trailing zeros trimmed so dumps stay small;
  /// the p* fields are quantile() snapshots (present when count > 0).
  Json toJson() const;

  void reset();

private:
  double FirstBound;
  unsigned NumBounded;
  std::vector<std::atomic<uint64_t>> Buckets; ///< NumBounded + overflow
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0};
  std::atomic<double> Min{0}, Max{0}; ///< valid when Count > 0
};

/// Thread-safe name -> metric store. Lookup creates on first use; the
/// returned references remain valid until the registry is destroyed
/// (metrics are never erased, resetValues() zeroes them in place).
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// \p FirstBound / \p NumBuckets apply only on first creation.
  Histogram &histogram(const std::string &Name, double FirstBound = 1e-3,
                       unsigned NumBuckets = 40);

  /// Point-in-time snapshot:
  /// {"counters":{name:value}, "gauges":{...}, "histograms":{...}}.
  Json toJson() const;

  /// Point-in-time snapshot in Prometheus text exposition format
  /// (version 0.0.4): counters as `# TYPE eco_<name> counter`, gauges
  /// as gauges, histograms as the standard cumulative-`le` bucket
  /// series plus `_sum`/`_count`. Metric names are prefixed "eco_" and
  /// sanitized (every character outside [a-zA-Z0-9_:] becomes '_'),
  /// so "eval.cache_hits" scrapes as eco_eval_cache_hits.
  std::string toPrometheus() const;

  /// Zeroes every metric in place (references stay valid). Used by the
  /// CLI at tune start and by tests.
  void resetValues();

  /// Sum of every counter whose name starts with \p Prefix — the
  /// reconciliation helper (e.g. sum of "eval.points." counters must
  /// equal TuneResult::TotalPoints).
  uint64_t sumCounters(const std::string &Prefix) const;

private:
  mutable Mutex M{"obs.metrics"};
  std::map<std::string, std::unique_ptr<Counter>> Counters
      ECO_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Gauge>> Gauges ECO_GUARDED_BY(M);
  std::map<std::string, std::unique_ptr<Histogram>> Histograms
      ECO_GUARDED_BY(M);
};

/// The process-wide registry instrumented code writes to.
MetricsRegistry &metrics();

/// Global kill-switch for metric writes; default off. Instrumentation
/// sites check this before touching the registry.
bool metricsEnabled();
void setMetricsEnabled(bool Enabled);

} // namespace obs
} // namespace eco

#endif // ECO_OBS_METRICS_H
