//===- obs/Span.h - Scoped spans + Chrome trace export ---------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timeline spans for the tuning pipeline. A SpanScope records one timed
/// interval (RAII: construction stamps the start on the monotonic obs
/// clock, destruction records the duration) attributed to a "tid" — for
/// engine evaluations the lane number, otherwise a dense per-thread id.
/// The process-wide SpanCollector gathers records and exports them as
/// Chrome trace-event JSON ("X" complete events plus "thread_name"
/// metadata), so a whole tune — search stages, warm batches, backend
/// evals, cache and checkpoint writes — renders as a per-lane timeline in
/// Perfetto or chrome://tracing.
///
/// Zero-cost when off: a SpanScope whose collector is disabled at
/// construction does one relaxed atomic load and never touches the clock.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_OBS_SPAN_H
#define ECO_OBS_SPAN_H

#include "support/Json.h"
#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eco {
namespace obs {

/// One completed interval on the shared monotonic timeline.
struct SpanRecord {
  std::string Name;   ///< event name ("eval v1/tile0", "stage:register")
  std::string Cat;    ///< category ("tune", "search", "eval", "io")
  std::string Detail; ///< free-form args.detail text (may be empty)
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  int Tid = 0; ///< engine lane, or dense thread id for non-lane work
};

/// Thread-safe collector with Chrome trace-event JSON export.
class SpanCollector {
public:
  /// The process-wide collector all SpanScopes record into.
  static SpanCollector &global();

  bool enabled() const { return On.load(std::memory_order_relaxed); }
  void setEnabled(bool Enabled) {
    On.store(Enabled, std::memory_order_relaxed);
  }

  void record(SpanRecord R);
  /// Names \p Tid's row in the exported timeline ("lane 0 (search)").
  void setThreadName(int Tid, std::string Name);

  std::vector<SpanRecord> records() const;
  size_t numRecords() const;
  void clear();

  /// {"displayTimeUnit":"ms","traceEvents":[...]} — "M" thread_name
  /// metadata first, then one "X" complete event per span (ts/dur in
  /// microseconds, as the format requires).
  Json chromeTraceJson() const;

  /// Serializes chromeTraceJson() to \p Path (atomic write).
  bool writeChromeTrace(const std::string &Path) const;

private:
  std::atomic<bool> On{false};
  mutable Mutex M{"obs.spans"};
  std::vector<SpanRecord> Records ECO_GUARDED_BY(M);
  std::map<int, std::string> ThreadNames ECO_GUARDED_BY(M);
};

/// Dense id of the calling thread (0 for the first caller — the main /
/// search thread, which is also engine lane 0).
int currentThreadTid();

/// RAII span over the global collector.
class SpanScope {
public:
  /// \p Tid < 0 attributes the span to the calling thread's dense id.
  explicit SpanScope(std::string Name, std::string Cat = "",
                     std::string Detail = "", int Tid = -1);
  ~SpanScope();

  SpanScope(const SpanScope &) = delete;
  SpanScope &operator=(const SpanScope &) = delete;

  /// Replaces the detail text (e.g. once a batch size is known).
  void setDetail(std::string Detail);

private:
  bool Active;
  SpanRecord R;
};

} // namespace obs
} // namespace eco

#endif // ECO_OBS_SPAN_H
