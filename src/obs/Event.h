//===- obs/Event.h - Structured decision-event bus -------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuner's flight recorder: a thread-safe, bounded bus of structured
/// decision events. Where metrics answer "how many" and spans answer
/// "how long", events answer "why" — each one records a single decision
/// the tuner made (a variant derived or rejected, a warm start seeded or
/// reverted, a config evaluated, the winner updated) with enough payload
/// to reconstruct the search after the fact.
///
/// Publishers guard every call with obs::eventsEnabled() (one relaxed
/// atomic load), so the evaluation hot path pays nothing unless the user
/// asked for an event stream (--events-file or a live reader). Events
/// flow to two places:
///
///   - a JSONL file sink (one event object per line), the durable
///     artifact `eco_cli report` and `eco_check --audit-events` consume;
///   - a bounded in-memory ring for live readers (the serve daemon's
///     introspection verbs). On overflow the ring drops the *oldest*
///     event and bumps the `obs.events_dropped` counter — live readers
///     see a recent window, never a stalled publisher.
///
/// Event types published today (payload fields in parentheses):
///
///   tune.start         (nest, problem, variants hint)
///   variant.derived    (variant)
///   variant.rejected   (variant plan, reason)        — TransformError
///   variant.ranked     (variant, heuristic cost, config) — model initial
///   variant.pruned     (variant, rank, reason)       — ranked, not searched
///   warmstart.seeded   (variant, params[{name,value,lo,hi}])
///   warmstart.reverted (variant, seed cost, model cost)
///   stage.bounds       (variant, param, lo, hi)
///   config.evaluated   (variant, stage, config, cost, cache_hit, warm,
///                       lane, ms)
///   config.rejected    (variant, stage, config, reason) — TransformError
///   winner.updated     (variant, config, cost)
///   stage.telemetry    (variant, stage, evals, hits, hw counters)
///   tune.done          (reconciliation totals + winner; see Tuner.cpp)
///   job.submitted / job.started / job.finished — serve daemon lifecycle
///
/// The bus assigns each event a dense sequence number and a timestamp
/// from the shared observability epoch (obs::monotonicMicros), both under
/// one mutex, so sequence order and timestamp order agree — the audit in
/// src/check/EventAudit.h leans on that.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_OBS_EVENT_H
#define ECO_OBS_EVENT_H

#include "support/Json.h"
#include "support/Sync.h"

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace eco {
namespace obs {

/// One recorded decision. Seq and TimeUs are assigned by the bus.
struct Event {
  uint64_t Seq = 0;    ///< dense, process-wide publication order
  uint64_t TimeUs = 0; ///< obs::monotonicMicros() at publication
  uint64_t Job = 0;    ///< serve job attribution (0 = not inside a job)
  std::string Type;    ///< e.g. "config.evaluated"
  Json Fields;         ///< type-specific payload (JSON object)
};

/// Serializes \p E as the canonical single-line JSON object:
/// {"seq":..,"t_us":..,"type":..,("job":..,)"fields":{..}}.
Json eventToJson(const Event &E);

/// Parses one JSONL line back into \p Out. Returns false (and sets
/// \p Error) when the line is not a well-formed event object.
bool eventFromJson(const Json &J, Event &Out, std::string *Error);

/// The process-wide bus. All methods are safe to call concurrently.
class EventBus {
public:
  static EventBus &global();

  /// Ring capacity for live readers (default 4096). Shrinking drops the
  /// oldest entries immediately (counted as dropped).
  void setCapacity(size_t N);
  size_t capacity() const;

  /// Publishes one event: stamps Seq/TimeUs/Job, appends to the JSONL
  /// sink (if open) and the ring. No-op unless the bus is enabled.
  void publish(std::string Type, Json Fields);

  /// Oldest-first copy of the live ring.
  std::vector<Event> snapshot() const;

  /// Events published / dropped from the ring since the last clear().
  uint64_t published() const;
  uint64_t dropped() const;
  /// Publications of \p Type since the last clear() (counts every
  /// publish, including events since rotated out of the ring). The
  /// tuner diffs these around a tune to stamp reconciliation totals
  /// into the tune.done event.
  uint64_t typeCount(const std::string &Type) const;

  /// Opens (or replaces) the JSONL sink. Returns false on I/O failure.
  bool openFile(const std::string &Path, bool Append = false);
  void closeFile();
  void flush();

  /// Drops ring contents and zeroes counters (sequence numbers keep
  /// rising so files with multiple segments stay strictly ordered).
  void clear();

private:
  mutable Mutex M{"obs.events"};
  std::deque<Event> Ring ECO_GUARDED_BY(M);
  size_t Capacity ECO_GUARDED_BY(M) = 4096;
  uint64_t NextSeq ECO_GUARDED_BY(M) = 0;
  uint64_t Published ECO_GUARDED_BY(M) = 0;
  uint64_t Dropped ECO_GUARDED_BY(M) = 0;
  std::map<std::string, uint64_t> TypeCounts ECO_GUARDED_BY(M);
  FILE *File ECO_GUARDED_BY(M) = nullptr;
};

/// Global kill-switch mirroring metricsEnabled(): one relaxed load.
/// Publishers must check this before building payloads.
bool eventsEnabled();
void setEventsEnabled(bool Enabled);

/// Publishes through the global bus; call only under eventsEnabled().
void publishEvent(std::string Type, Json Fields);

/// Serve-job attribution: while a ScopedJobId is alive on a thread,
/// events published from that thread carry Job = Id. The tuning service
/// runs one job per worker thread, so a thread-local is exact.
class ScopedJobId {
public:
  explicit ScopedJobId(uint64_t Id);
  ~ScopedJobId();
  ScopedJobId(const ScopedJobId &) = delete;
  ScopedJobId &operator=(const ScopedJobId &) = delete;

private:
  uint64_t Prev;
};

/// The current thread's job attribution (0 when outside a job).
uint64_t currentJobId();

} // namespace obs
} // namespace eco

#endif // ECO_OBS_EVENT_H
