//===- obs/Metrics.cpp - Thread-safe metrics registry ---------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace eco;
using namespace eco::obs;

Histogram::Histogram(double FirstBound, unsigned NumBuckets)
    : FirstBound(FirstBound), NumBounded(NumBuckets),
      Buckets(NumBuckets + 1) {
  assert(FirstBound > 0 && "first bucket bound must be positive");
  assert(NumBuckets > 0 && NumBuckets <= 64 && "unreasonable bucket count");
}

double Histogram::bucketBound(unsigned I) const {
  assert(I < NumBounded && "overflow bucket has no bound");
  double Bound = FirstBound;
  for (unsigned B = 0; B < I; ++B)
    Bound *= 2;
  return Bound;
}

uint64_t Histogram::bucketCount(unsigned I) const {
  assert(I <= NumBounded && "bucket index out of range");
  return Buckets[I].load(std::memory_order_relaxed);
}

void Histogram::record(double V) {
  // Walk the doubling bounds; the loop is exact (no log/exp rounding at
  // the boundaries, which the bucket tests pin down) and short.
  unsigned I = 0;
  double Bound = FirstBound;
  while (I < NumBounded && V > Bound) {
    Bound *= 2;
    ++I;
  }
  // I == NumBounded means V exceeded every bound: overflow bucket.
  Buckets[I].fetch_add(1, std::memory_order_relaxed);

  uint64_t Prev = Count.fetch_add(1, std::memory_order_relaxed);
  double Cur = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Cur, Cur + V,
                                    std::memory_order_relaxed))
    ;
  if (Prev == 0) {
    // First record initializes min/max; later records CAS toward V.
    // A racing first pair may both think they are first — the CAS loops
    // below still converge to the true extrema because each retries
    // against the live value.
    Min.store(V, std::memory_order_relaxed);
    Max.store(V, std::memory_order_relaxed);
  }
  double CurMin = Min.load(std::memory_order_relaxed);
  while (V < CurMin &&
         !Min.compare_exchange_weak(CurMin, V, std::memory_order_relaxed))
    ;
  double CurMax = Max.load(std::memory_order_relaxed);
  while (V > CurMax &&
         !Max.compare_exchange_weak(CurMax, V, std::memory_order_relaxed))
    ;
}

double Histogram::minValue() const {
  return count() ? Min.load(std::memory_order_relaxed) : 0;
}

double Histogram::maxValue() const {
  return count() ? Max.load(std::memory_order_relaxed) : 0;
}

double Histogram::quantile(double Q) const {
  uint64_t Total = count();
  if (!Total)
    return 0;
  Q = std::min(1.0, std::max(0.0, Q));
  // Rank of the quantile record, 1-based; Q=0 asks for the first record.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
  if (Rank * 1.0 < Q * static_cast<double>(Total) || Rank == 0)
    ++Rank; // ceil, and at least 1
  if (Rank > Total)
    Rank = Total;
  uint64_t Seen = 0;
  for (unsigned I = 0; I <= NumBounded; ++I) {
    Seen += bucketCount(I);
    if (Seen >= Rank) {
      // Overflow bucket has no upper bound; report the observed max.
      double V = I < NumBounded ? bucketBound(I) : maxValue();
      return std::min(std::max(V, minValue()), maxValue());
    }
  }
  // Racing record() can make Count exceed the bucket sum momentarily.
  return maxValue();
}

Json Histogram::toJson() const {
  Json J = Json::object();
  J.set("count", count());
  J.set("sum", sum());
  J.set("min", minValue());
  J.set("max", maxValue());
  J.set("firstBound", FirstBound);
  unsigned Last = 0;
  for (unsigned I = 0; I < NumBounded; ++I)
    if (bucketCount(I))
      Last = I + 1;
  Json Bs = Json::array();
  for (unsigned I = 0; I < Last; ++I)
    Bs.push(bucketCount(I));
  J.set("buckets", std::move(Bs));
  J.set("overflow", bucketCount(NumBounded));
  if (count()) {
    J.set("p50", quantile(0.50));
    J.set("p95", quantile(0.95));
    J.set("p99", quantile(0.99));
  }
  return J;
}

void Histogram::reset() {
  for (std::atomic<uint64_t> &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  MutexLock Lock(M);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  MutexLock Lock(M);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      double FirstBound,
                                      unsigned NumBuckets) {
  MutexLock Lock(M);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(FirstBound, NumBuckets);
  return *Slot;
}

Json MetricsRegistry::toJson() const {
  MutexLock Lock(M);
  Json Cs = Json::object();
  for (const auto &[Name, C] : Counters)
    Cs.set(Name, C->value());
  Json Gs = Json::object();
  for (const auto &[Name, G] : Gauges)
    Gs.set(Name, G->value());
  Json Hs = Json::object();
  for (const auto &[Name, H] : Histograms)
    Hs.set(Name, H->toJson());
  Json Root = Json::object();
  Root.set("counters", std::move(Cs));
  Root.set("gauges", std::move(Gs));
  Root.set("histograms", std::move(Hs));
  return Root;
}

namespace {

std::string promName(const std::string &Name) {
  std::string Out = "eco_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out.push_back(Ok ? C : '_');
  }
  return Out;
}

std::string promNumber(double V) {
  char Buf[64];
  // Integral values print without an exponent so counters stay readable;
  // %.17g keeps full double precision otherwise (matches Json::dump).
  if (V == static_cast<double>(static_cast<long long>(V)))
    snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

std::string MetricsRegistry::toPrometheus() const {
  MutexLock Lock(M);
  std::string Out;
  for (const auto &[Name, C] : Counters) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " counter\n";
    Out += P + " " + promNumber(static_cast<double>(C->value())) + "\n";
  }
  for (const auto &[Name, G] : Gauges) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " gauge\n";
    Out += P + " " + promNumber(G->value()) + "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string P = promName(Name);
    Out += "# TYPE " + P + " histogram\n";
    // Prometheus buckets are cumulative: each `le` series counts every
    // record at or below that bound, ending with the +Inf total.
    uint64_t Cum = 0;
    for (unsigned I = 0; I < H->numBuckets(); ++I) {
      Cum += H->bucketCount(I);
      Out += P + "_bucket{le=\"" + promNumber(H->bucketBound(I)) + "\"} " +
             promNumber(static_cast<double>(Cum)) + "\n";
    }
    Cum += H->bucketCount(H->numBuckets());
    Out += P + "_bucket{le=\"+Inf\"} " +
           promNumber(static_cast<double>(Cum)) + "\n";
    Out += P + "_sum " + promNumber(H->sum()) + "\n";
    Out += P + "_count " + promNumber(static_cast<double>(H->count())) +
           "\n";
  }
  return Out;
}

void MetricsRegistry::resetValues() {
  MutexLock Lock(M);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

uint64_t MetricsRegistry::sumCounters(const std::string &Prefix) const {
  MutexLock Lock(M);
  uint64_t Total = 0;
  for (const auto &[Name, C] : Counters)
    if (Name.compare(0, Prefix.size(), Prefix) == 0)
      Total += C->value();
  return Total;
}

MetricsRegistry &obs::metrics() {
  static MetricsRegistry Registry;
  return Registry;
}

namespace {
std::atomic<bool> MetricsOn{false};
} // namespace

bool obs::metricsEnabled() {
  return MetricsOn.load(std::memory_order_relaxed);
}

void obs::setMetricsEnabled(bool Enabled) {
  MetricsOn.store(Enabled, std::memory_order_relaxed);
}
