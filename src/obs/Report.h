//===- obs/Report.h - Tune reports from the flight recorder ----*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a flight-recorder event stream (obs/Event.h) into a
/// self-contained tune report: the search timeline, the pruning
/// breakdown by reason (the per-tune version of the paper's Tables 3/4
/// story — how much of the space the models removed before anything
/// ran), per-stage hardware-counter telemetry, and the winner's
/// provenance with model-vs-empirical attribution ("why this config").
///
/// The analysis recomputes every total from the raw events and checks
/// them against the `tune.done` record the Tuner stamped from
/// TuneResult — a report that says "reconciliation: OK" is demonstrably
/// consistent with the tuner's own ledger, down to a bitwise-equal
/// winner cost. `eco_cli report <events.jsonl>` renders Markdown (or
/// HTML with --html); eco_check --audit-events runs the stricter
/// invariant set in src/check/EventAudit.h over the same stream.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_OBS_REPORT_H
#define ECO_OBS_REPORT_H

#include "obs/Event.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eco {
namespace obs {

/// One tune window (tune.start .. tune.done) analyzed out of a stream.
struct TuneReportData {
  std::string Nest;
  Json Problem;              ///< problem bindings from tune.start
  uint64_t StartUs = 0;      ///< tune.start timestamp
  uint64_t DoneUs = 0;       ///< tune.done timestamp (0 when truncated)

  // Totals recomputed from the raw events of this window.
  uint64_t Evaluated = 0;        ///< config.evaluated, cache_hit = false
  uint64_t CacheHits = 0;        ///< config.evaluated, cache_hit = true
  uint64_t VariantsDerived = 0;  ///< variant.derived
  uint64_t VariantsRejected = 0; ///< variant.rejected (derivation prune)
  uint64_t VariantsPruned = 0;   ///< variant.pruned (model-ranking prune)
  uint64_t ConfigsRejected = 0;  ///< config.rejected (transform prune)
  /// TransformError reason -> count, over variant.rejected +
  /// config.rejected (the "pruning breakdown by reason" table).
  std::map<std::string, uint64_t> RejectReasons;

  /// Winner lineage: every winner.updated step, in order.
  struct WinnerStep {
    uint64_t TimeUs = 0;
    std::string Variant;
    std::string Config;
    double Cost = 0;
  };
  std::vector<WinnerStep> Winners;

  /// Model initial points per variant (variant.ranked).
  std::map<std::string, double> ModelInitialCost;
  std::map<std::string, std::string> ModelInitialConfig;

  /// Per-(variant, stage) activity window, in first-seen order.
  struct StageSpan {
    std::string Variant;
    std::string Stage;
    uint64_t FirstUs = 0;
    uint64_t LastUs = 0;
    uint64_t Evals = 0;
    uint64_t Hits = 0;
  };
  std::vector<StageSpan> Timeline;

  /// Raw stage.telemetry field objects, in publication order.
  std::vector<Json> Telemetry;

  bool WarmSeeded = false;
  bool WarmReverted = false;
  Json WarmSeed;                ///< fields of warmstart.seeded
  std::vector<Json> SeedBounds; ///< fields of each stage.bounds

  /// Backend latency quantiles over real evaluations (ms), derived via
  /// obs::Histogram::quantile (log2 buckets: at most 2x overestimates).
  double P50Ms = 0, P95Ms = 0, P99Ms = 0;

  bool HasDone = false;
  Json Done; ///< tune.done fields, verbatim

  /// Stream-vs-TuneResult mismatches; empty + HasDone = reconciled.
  std::vector<std::string> Mismatches;
  bool reconciled() const { return HasDone && Mismatches.empty(); }
};

/// Full analysis of one stream (it may hold several tunes, e.g. a serve
/// daemon's events file).
struct FlightAnalysis {
  std::vector<TuneReportData> Tunes;
  uint64_t TotalEvents = 0;
  /// Events outside any tune window (daemon job lifecycle etc.).
  uint64_t UnscopedEvents = 0;
  std::vector<std::string> Errors; ///< schema problems found on the way
};

/// Reads a JSONL events file. Returns false (and sets \p Error) only on
/// I/O failure; malformed lines are skipped and reported via \p Errors
/// when non-null.
bool loadEventsFile(const std::string &Path, std::vector<Event> &Out,
                    std::string *Error,
                    std::vector<std::string> *Errors = nullptr);

/// Recomputes totals, timelines, and reconciliation for every tune
/// window in \p Events.
FlightAnalysis analyzeEvents(const std::vector<Event> &Events);

/// Renders the analysis as GitHub-flavored Markdown.
std::string renderMarkdown(const FlightAnalysis &A);

/// Renders a minimal self-contained HTML page wrapping the same report.
std::string renderHtml(const FlightAnalysis &A);

} // namespace obs
} // namespace eco

#endif // ECO_OBS_REPORT_H
