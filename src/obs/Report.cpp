//===- obs/Report.cpp - Tune reports from the flight recorder -------------===//

#include "obs/Report.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

using namespace eco;
using namespace eco::obs;

bool obs::loadEventsFile(const std::string &Path, std::vector<Event> &Out,
                         std::string *Error,
                         std::vector<std::string> *Errors) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string ParseErr;
    Json J = Json::parse(Line, &ParseErr);
    Event E;
    std::string EvErr;
    if (!ParseErr.empty() || !eventFromJson(J, E, &EvErr)) {
      if (Errors)
        Errors->push_back("line " + std::to_string(LineNo) + ": " +
                          (!ParseErr.empty() ? ParseErr : EvErr));
      continue;
    }
    Out.push_back(std::move(E));
  }
  return true;
}

namespace {

std::string fmtCost(double C) {
  char Buf[64];
  // Full precision (same formatter as Json), so the printed winner cost
  // is bitwise-recoverable.
  snprintf(Buf, sizeof(Buf), "%.17g", C);
  return Buf;
}

std::string fmtMs(double Us) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.1f", Us / 1e3);
  return Buf;
}

uint64_t doneCount(const Json &Done, const char *Key) {
  return static_cast<uint64_t>(Done.get(Key).asInt());
}

void checkCount(TuneReportData &T, const char *What, uint64_t Stream,
                uint64_t FromDone) {
  if (Stream == FromDone)
    return;
  T.Mismatches.push_back(std::string(What) + ": event stream says " +
                         std::to_string(Stream) + ", TuneResult says " +
                         std::to_string(FromDone));
}

/// Folds one in-window event into \p T. \p Lat collects real-eval
/// latencies for the quantile summary.
void fold(TuneReportData &T, const Event &E, Histogram &Lat) {
  const Json &F = E.Fields;
  if (E.Type == "config.evaluated") {
    bool Hit = F.get("cache_hit").asBool();
    Hit ? ++T.CacheHits : ++T.Evaluated;
    if (!Hit)
      Lat.record(F.get("ms").asNumber());
    const std::string &Var = F.get("variant").asString();
    const std::string &Stage = F.get("stage").asString();
    auto It = std::find_if(T.Timeline.begin(), T.Timeline.end(),
                           [&](const TuneReportData::StageSpan &S) {
                             return S.Variant == Var && S.Stage == Stage;
                           });
    if (It == T.Timeline.end()) {
      T.Timeline.push_back({Var, Stage, E.TimeUs, E.TimeUs, 0, 0});
      It = T.Timeline.end() - 1;
    }
    It->FirstUs = std::min(It->FirstUs, E.TimeUs);
    It->LastUs = std::max(It->LastUs, E.TimeUs);
    Hit ? ++It->Hits : ++It->Evals;
  } else if (E.Type == "variant.derived") {
    ++T.VariantsDerived;
  } else if (E.Type == "variant.rejected") {
    ++T.VariantsRejected;
    ++T.RejectReasons[F.get("reason").asString()];
  } else if (E.Type == "variant.pruned") {
    ++T.VariantsPruned;
  } else if (E.Type == "config.rejected") {
    ++T.ConfigsRejected;
    ++T.RejectReasons[F.get("reason").asString()];
  } else if (E.Type == "variant.ranked") {
    T.ModelInitialCost[F.get("variant").asString()] =
        F.get("cost").asNumber();
    T.ModelInitialConfig[F.get("variant").asString()] =
        F.get("config").asString();
  } else if (E.Type == "winner.updated") {
    T.Winners.push_back({E.TimeUs, F.get("variant").asString(),
                         F.get("config").asString(),
                         F.get("cost").asNumber()});
  } else if (E.Type == "warmstart.seeded") {
    T.WarmSeeded = true;
    T.WarmSeed = F;
  } else if (E.Type == "warmstart.reverted") {
    T.WarmReverted = true;
  } else if (E.Type == "stage.bounds") {
    T.SeedBounds.push_back(F);
  } else if (E.Type == "stage.telemetry") {
    T.Telemetry.push_back(F);
  }
}

void finishTune(TuneReportData &T, const Histogram &Lat) {
  if (Lat.count()) {
    T.P50Ms = Lat.quantile(0.50);
    T.P95Ms = Lat.quantile(0.95);
    T.P99Ms = Lat.quantile(0.99);
  }
  if (!T.HasDone) {
    T.Mismatches.push_back("stream truncated: no tune.done record");
    return;
  }
  const Json &D = T.Done;
  // Restored (checkpointed) points were counted by a previous run's
  // events, not this stream's.
  checkCount(T, "evaluations",
             T.Evaluated + doneCount(D, "restored_points"),
             doneCount(D, "points"));
  checkCount(T, "cache hits", T.CacheHits, doneCount(D, "cache_hits"));
  checkCount(T, "variants derived", T.VariantsDerived,
             doneCount(D, "variants_derived"));
  checkCount(T, "variants rejected", T.VariantsRejected,
             doneCount(D, "variants_rejected"));
  checkCount(T, "configs rejected", T.ConfigsRejected,
             doneCount(D, "configs_rejected"));
  if (!T.Winners.empty()) {
    double Best = D.get("best_cost").asNumber();
    // Bitwise equality: both sides round-tripped through the same
    // %.17g formatter, so any drift is a real provenance break.
    if (T.Winners.back().Cost != Best)
      T.Mismatches.push_back("winner cost: last winner.updated says " +
                             fmtCost(T.Winners.back().Cost) +
                             ", TuneResult::BestCost is " + fmtCost(Best));
    if (T.Winners.back().Variant != D.get("best_variant").asString())
      T.Mismatches.push_back("winner variant: events say " +
                             T.Winners.back().Variant +
                             ", TuneResult says " +
                             D.get("best_variant").asString());
  }
}

} // namespace

FlightAnalysis obs::analyzeEvents(const std::vector<Event> &Events) {
  FlightAnalysis A;
  A.TotalEvents = Events.size();
  // A serve daemon's stream interleaves concurrent tunes; each carries
  // its job id, so windows are keyed by job (0 = the CLI's one tune).
  struct OpenTune {
    TuneReportData Data;
    Histogram Lat{1e-3, 40};
  };
  std::map<uint64_t, OpenTune> Open;

  for (const Event &E : Events) {
    if (E.Type == "tune.start") {
      if (Open.count(E.Job)) {
        // Previous window never closed (crash / truncation): flush it.
        OpenTune &Prev = Open[E.Job];
        finishTune(Prev.Data, Prev.Lat);
        A.Tunes.push_back(std::move(Prev.Data));
        Open.erase(E.Job);
      }
      OpenTune &T = Open[E.Job];
      T.Data.Nest = E.Fields.get("nest").asString();
      T.Data.Problem = E.Fields.get("problem");
      T.Data.StartUs = E.TimeUs;
      continue;
    }
    auto It = Open.find(E.Job);
    if (It == Open.end()) {
      ++A.UnscopedEvents;
      continue;
    }
    if (E.Type == "tune.done") {
      It->second.Data.HasDone = true;
      It->second.Data.Done = E.Fields;
      It->second.Data.DoneUs = E.TimeUs;
      finishTune(It->second.Data, It->second.Lat);
      A.Tunes.push_back(std::move(It->second.Data));
      Open.erase(It);
      continue;
    }
    fold(It->second.Data, E, It->second.Lat);
  }
  for (auto &[Job, T] : Open) {
    (void)Job;
    finishTune(T.Data, T.Lat);
    A.Tunes.push_back(std::move(T.Data));
  }
  return A;
}

namespace {

void renderTune(std::string &Out, const TuneReportData &T, size_t Index) {
  Out += "## Tune " + std::to_string(Index + 1) + ": " +
         (T.Nest.empty() ? std::string("<unnamed>") : T.Nest) + "\n\n";
  if (T.Problem.isObject() && T.Problem.size()) {
    Out += "Problem:";
    for (const auto &[K, V] : T.Problem.fields())
      Out += " " + K + "=" + std::to_string(V.asInt());
    Out += ". ";
  }
  if (T.DoneUs > T.StartUs)
    Out += "Wall time " + fmtMs(static_cast<double>(T.DoneUs - T.StartUs)) +
           " ms.";
  Out += "\n\n";

  // -- The pruning funnel: what the models removed before / instead of
  // running anything (the per-tune Tables 3/4 story).
  Out += "### Pruning breakdown\n\n";
  Out += "| step | count |\n|---|---|\n";
  Out += "| tiling plans rejected at derivation (illegal transform) | " +
         std::to_string(T.VariantsRejected) + " |\n";
  Out += "| variants derived | " + std::to_string(T.VariantsDerived) +
         " |\n";
  Out += "| variants pruned by model ranking (never searched) | " +
         std::to_string(T.VariantsPruned) + " |\n";
  uint64_t Infeasible =
      T.HasDone ? doneCount(T.Done, "infeasible_pruned") : 0;
  Out += "| candidate configs pruned by model constraints (never run) | " +
         std::to_string(Infeasible) + " |\n";
  Out += "| configs rejected at evaluation (illegal transform) | " +
         std::to_string(T.ConfigsRejected) + " |\n";
  Out += "| configs evaluated on the backend | " +
         std::to_string(T.Evaluated) + " |\n";
  Out += "| evaluator cache hits | " + std::to_string(T.CacheHits) +
         " |\n\n";
  uint64_t Considered = Infeasible + T.ConfigsRejected + T.Evaluated +
                        T.CacheHits;
  if (Considered && T.Evaluated) {
    char Buf[128];
    snprintf(Buf, sizeof(Buf),
             "Of %" PRIu64 " candidate decisions, only %" PRIu64
             " (%.1f%%) needed a backend execution.\n\n",
             Considered, T.Evaluated,
             100.0 * static_cast<double>(T.Evaluated) /
                 static_cast<double>(Considered));
    Out += Buf;
  }
  if (!T.RejectReasons.empty()) {
    Out += "Rejections by reason:\n\n| reason | count |\n|---|---|\n";
    for (const auto &[Reason, N] : T.RejectReasons)
      Out += "| " + Reason + " | " + std::to_string(N) + " |\n";
    Out += "\n";
  }

  // -- Winner provenance.
  Out += "### Winner\n\n";
  if (T.HasDone && !T.Done.get("best_variant").asString().empty()) {
    const std::string &BV = T.Done.get("best_variant").asString();
    Out += "- variant: `" + BV + "`\n";
    Out += "- config: `" + T.Done.get("best_config").asString() + "`\n";
    Out += "- cost: `" + fmtCost(T.Done.get("best_cost").asNumber()) +
           "`\n";
    auto MI = T.ModelInitialCost.find(BV);
    if (MI != T.ModelInitialCost.end()) {
      double Model = MI->second;
      double Final = T.Done.get("best_cost").asNumber();
      auto MC = T.ModelInitialConfig.find(BV);
      if (MC != T.ModelInitialConfig.end() &&
          MC->second == T.Done.get("best_config").asString()) {
        Out += "- attribution: the model's initial point **was** the "
               "final winner (search confirmed it)\n";
      } else if (Model > 0 && Final < Model) {
        char Buf[128];
        snprintf(Buf, sizeof(Buf),
                 "- attribution: model initial point cost %s; empirical "
                 "search improved it by %.1f%%\n",
                 fmtCost(Model).c_str(), 100.0 * (Model - Final) / Model);
        Out += Buf;
      } else {
        Out += "- attribution: model initial point cost " +
               fmtCost(Model) + "; search kept a different config at "
               "equal or better cost\n";
      }
    }
    if (!T.Winners.empty()) {
      Out += "\nLineage (each time the best-so-far improved):\n\n";
      Out += "| t (ms) | variant | cost |\n|---|---|---|\n";
      for (const TuneReportData::WinnerStep &W : T.Winners)
        Out += "| " + fmtMs(static_cast<double>(W.TimeUs - T.StartUs)) +
               " | " + W.Variant + " | " + fmtCost(W.Cost) + " |\n";
      Out += "\n";
    }
  } else {
    Out += "No winner recorded (tune failed or stream truncated).\n\n";
  }

  // -- Warm start.
  if (T.WarmSeeded) {
    Out += "### Warm start\n\n";
    Out += T.WarmReverted
               ? "Seed **reverted**: the model's own initial point beat "
                 "the warm-start seed, so the search ran cold-width.\n"
               : "Seeded from a neighboring configuration";
    if (!T.WarmReverted && !T.SeedBounds.empty()) {
      Out += " with stage bounds:\n\n| param | lo | hi |\n|---|---|---|\n";
      for (const Json &B : T.SeedBounds)
        Out += "| " + B.get("param").asString() + " | " +
               std::to_string(B.get("lo").asInt()) + " | " +
               std::to_string(B.get("hi").asInt()) + " |\n";
    } else if (!T.WarmReverted) {
      Out += ".\n";
    }
    Out += "\n";
  }

  // -- Timeline.
  if (!T.Timeline.empty()) {
    Out += "### Search timeline\n\n";
    Out += "| variant | stage | start (ms) | end (ms) | evals | hits "
           "|\n|---|---|---|---|---|---|\n";
    for (const TuneReportData::StageSpan &S : T.Timeline)
      Out += "| " + S.Variant + " | " + S.Stage + " | " +
             fmtMs(static_cast<double>(S.FirstUs - T.StartUs)) + " | " +
             fmtMs(static_cast<double>(S.LastUs - T.StartUs)) + " | " +
             std::to_string(S.Evals) + " | " + std::to_string(S.Hits) +
             " |\n";
    Out += "\n";
  }

  // -- Telemetry.
  if (!T.Telemetry.empty()) {
    bool AnyHW = false;
    for (const Json &Row : T.Telemetry)
      AnyHW |= Row.has("loads");
    Out += "### Per-stage telemetry\n\n";
    Out += AnyHW ? "| variant | stage | evals | loads | L1 miss | L2 "
                   "miss | TLB miss | cycles |\n|---|---|---|---|---|---"
                   "|---|---|\n"
                 : "| variant | stage | evals | backend s "
                   "|\n|---|---|---|---|\n";
    for (const Json &Row : T.Telemetry) {
      Out += "| " + Row.get("variant").asString() + " | " +
             Row.get("stage").asString() + " | " +
             std::to_string(Row.get("evals").asInt()) + " | ";
      if (AnyHW) {
        Out += std::to_string(Row.get("loads").asInt()) + " | " +
               std::to_string(Row.get("l1_misses").asInt()) + " | " +
               std::to_string(Row.get("l2_misses").asInt()) + " | " +
               std::to_string(Row.get("tlb_misses").asInt()) + " | " +
               std::to_string(Row.get("cycles").asInt()) + " |\n";
      } else {
        Out += fmtCost(Row.get("backend_s").asNumber()) + " |\n";
      }
    }
    Out += "\n";
  }

  // -- Latency quantiles.
  if (T.Evaluated) {
    char Buf[160];
    snprintf(Buf, sizeof(Buf),
             "Backend latency per evaluation: p50 %.3g ms, p95 %.3g ms, "
             "p99 %.3g ms (log2-bucket quantiles, at most 2x above the "
             "true value).\n\n",
             T.P50Ms, T.P95Ms, T.P99Ms);
    Out += "### Evaluation latency\n\n";
    Out += Buf;
  }

  // -- Reconciliation.
  Out += "### Reconciliation\n\n";
  if (T.reconciled()) {
    Out += "**OK** — every stream-derived total matches TuneResult, and "
           "the winner cost is bitwise-identical to BestCost.\n\n";
  } else {
    for (const std::string &M : T.Mismatches)
      Out += "- MISMATCH: " + M + "\n";
    Out += "\n";
  }
}

} // namespace

std::string obs::renderMarkdown(const FlightAnalysis &A) {
  std::string Out = "# ECO tune report\n\n";
  Out += std::to_string(A.TotalEvents) + " events, " +
         std::to_string(A.Tunes.size()) + " tune(s)";
  if (A.UnscopedEvents)
    Out += ", " + std::to_string(A.UnscopedEvents) +
           " outside any tune window";
  Out += ".\n\n";
  for (const std::string &E : A.Errors)
    Out += "- malformed event: " + E + "\n";
  if (!A.Errors.empty())
    Out += "\n";
  for (size_t I = 0; I < A.Tunes.size(); ++I)
    renderTune(Out, A.Tunes[I], I);
  return Out;
}

std::string obs::renderHtml(const FlightAnalysis &A) {
  std::string Md = renderMarkdown(A);
  std::string Esc;
  Esc.reserve(Md.size());
  for (char C : Md) {
    switch (C) {
    case '&': Esc += "&amp;"; break;
    case '<': Esc += "&lt;"; break;
    case '>': Esc += "&gt;"; break;
    default: Esc += C;
    }
  }
  return "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
         "<title>ECO tune report</title>"
         "<style>body{font:14px/1.5 monospace;max-width:72em;"
         "margin:2em auto;padding:0 1em;}</style></head>\n"
         "<body><pre>\n" + Esc + "</pre></body></html>\n";
}
