//===- obs/Log.cpp - Leveled diagnostic logger ----------------------------===//

#include "obs/Log.h"

#include "support/Sync.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace eco;
using namespace eco::obs;

namespace {

/// Level parsed from ECO_LOG_LEVEL, or Warn. Evaluated once.
int initialLevel() {
  const char *Env = std::getenv("ECO_LOG_LEVEL");
  if (Env) {
    if (!std::strcmp(Env, "off"))
      return static_cast<int>(LogLevel::Off);
    if (!std::strcmp(Env, "error"))
      return static_cast<int>(LogLevel::Error);
    if (!std::strcmp(Env, "warn"))
      return static_cast<int>(LogLevel::Warn);
    if (!std::strcmp(Env, "info"))
      return static_cast<int>(LogLevel::Info);
    if (!std::strcmp(Env, "debug"))
      return static_cast<int>(LogLevel::Debug);
  }
  return static_cast<int>(LogLevel::Warn);
}

std::atomic<int> &levelStore() {
  static std::atomic<int> Level{initialLevel()};
  return Level;
}

Mutex &emitMutex() {
  static Mutex M{"obs.log.emit"};
  return M;
}

const char *levelName(LogLevel L) {
  switch (L) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Off:
    break;
  }
  return "off";
}

/// Last path component, so log lines stay short.
const char *baseName(const char *Path) {
  const char *Slash = std::strrchr(Path, '/');
  return Slash ? Slash + 1 : Path;
}

} // namespace

uint64_t obs::monotonicMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Epoch)
          .count());
}

int obs::detail::currentLevelRelaxed() {
  return levelStore().load(std::memory_order_relaxed);
}

LogLevel obs::logLevel() {
  return static_cast<LogLevel>(detail::currentLevelRelaxed());
}

void obs::setLogLevel(LogLevel Level) {
  levelStore().store(static_cast<int>(Level), std::memory_order_relaxed);
}

bool obs::setLogLevelByName(const std::string &Name) {
  if (Name == "off")
    setLogLevel(LogLevel::Off);
  else if (Name == "error")
    setLogLevel(LogLevel::Error);
  else if (Name == "warn")
    setLogLevel(LogLevel::Warn);
  else if (Name == "info")
    setLogLevel(LogLevel::Info);
  else if (Name == "debug")
    setLogLevel(LogLevel::Debug);
  else
    return false;
  return true;
}

LogMessage::LogMessage(LogLevel Level, const char *File, int Line)
    : Level(Level), File(File), Line(Line) {}

LogMessage::~LogMessage() {
  double Seconds = static_cast<double>(monotonicMicros()) / 1e6;
  std::string Text = Stream.str();
  MutexLock Lock(emitMutex());
  std::fprintf(stderr, "[eco %8.3fs %-5s %s:%d] %s\n", Seconds,
               levelName(Level), baseName(File), Line, Text.c_str());
}
