//===- obs/Log.h - Leveled diagnostic logger -------------------*- C++ -*-===//
//
// Part of the ECO reproduction of Chen, Chame & Hall, CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide leveled logger every subsystem routes diagnostics
/// through (replacing scattered raw `fprintf(stderr)` / `std::cerr`
/// sites). Usage:
///
/// \code
///   ECO_LOG(Warn) << "native compile failed: " << Error;
/// \endcode
///
/// The stream expression after ECO_LOG(level) is *not evaluated* when the
/// level is disabled — the macro expands to a guarded dangling-else, so a
/// disabled log costs one relaxed atomic load and a branch. The active
/// level comes from setLogLevel() (the CLI's --log-level flag) or, before
/// any explicit call, from the ECO_LOG_LEVEL environment variable
/// (off|error|warn|info|debug); the default is Warn.
///
/// Messages carry a monotonic timestamp from the same epoch the span
/// collector uses (obs::monotonicMicros), so stderr diagnostics can be
/// correlated against exported Chrome traces.
///
//===----------------------------------------------------------------------===//

#ifndef ECO_OBS_LOG_H
#define ECO_OBS_LOG_H

#include <cstdint>
#include <sstream>
#include <string>

namespace eco {
namespace obs {

/// Severity levels, most severe first. Off disables everything.
enum class LogLevel { Off = 0, Error, Warn, Info, Debug };

/// Microseconds elapsed since the process-wide observability epoch (a
/// monotonic clock captured on first use). Shared by log timestamps,
/// span start times, and TraceRecord::TimeMs so all three artifacts
/// align on one timeline.
uint64_t monotonicMicros();

/// The active level (relaxed atomic read — safe from any thread).
LogLevel logLevel();

/// Sets the active level.
void setLogLevel(LogLevel Level);

/// Parses "off", "error", "warn", "info", or "debug" (case-sensitive)
/// and sets the level; returns false (level unchanged) for anything else.
bool setLogLevelByName(const std::string &Name);

/// True when a message at \p Level would be emitted.
inline bool logEnabled(LogLevel Level);

/// One in-flight message: collects the streamed text and writes a single
/// line to stderr on destruction (mutex-guarded so concurrent lanes never
/// interleave mid-line).
class LogMessage {
public:
  LogMessage(LogLevel Level, const char *File, int Line);
  ~LogMessage();

  LogMessage(const LogMessage &) = delete;
  LogMessage &operator=(const LogMessage &) = delete;

  std::ostringstream &stream() { return Stream; }

private:
  LogLevel Level;
  const char *File;
  int Line;
  std::ostringstream Stream;
};

namespace detail {
/// The atomic backing store for the level, exposed so logEnabled() can
/// inline to one relaxed load.
int currentLevelRelaxed();
} // namespace detail

inline bool logEnabled(LogLevel Level) {
  return static_cast<int>(Level) <= detail::currentLevelRelaxed();
}

} // namespace obs
} // namespace eco

/// Streams a message at the given level (Error/Warn/Info/Debug). The
/// dangling-else form keeps the macro statement-safe inside unbraced
/// if/else while skipping argument evaluation when disabled.
#define ECO_LOG(LEVEL)                                                     \
  if (!::eco::obs::logEnabled(::eco::obs::LogLevel::LEVEL))                \
    ;                                                                      \
  else                                                                     \
    ::eco::obs::LogMessage(::eco::obs::LogLevel::LEVEL, __FILE__,          \
                           __LINE__)                                       \
        .stream()

#endif // ECO_OBS_LOG_H
