//===- obs/Event.cpp - Structured decision-event bus ----------------------===//

#include "obs/Event.h"

#include "obs/Log.h"
#include "obs/Metrics.h"

#include <atomic>

using namespace eco;
using namespace eco::obs;

Json obs::eventToJson(const Event &E) {
  Json J = Json::object();
  J.set("seq", E.Seq);
  J.set("t_us", E.TimeUs);
  J.set("type", E.Type);
  if (E.Job)
    J.set("job", E.Job);
  J.set("fields", E.Fields);
  return J;
}

bool obs::eventFromJson(const Json &J, Event &Out, std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!J.isObject())
    return Fail("event is not a JSON object");
  if (!J.get("seq").isNumber() || !J.get("t_us").isNumber())
    return Fail("event missing numeric seq/t_us");
  if (!J.get("type").isString() || J.get("type").asString().empty())
    return Fail("event missing type string");
  if (!J.get("fields").isObject())
    return Fail("event missing fields object");
  Out.Seq = static_cast<uint64_t>(J.get("seq").asInt());
  Out.TimeUs = static_cast<uint64_t>(J.get("t_us").asInt());
  Out.Job = static_cast<uint64_t>(J.get("job").asInt());
  Out.Type = J.get("type").asString();
  Out.Fields = J.get("fields");
  return true;
}

EventBus &EventBus::global() {
  static EventBus Bus;
  return Bus;
}

void EventBus::setCapacity(size_t N) {
  MutexLock Lock(M);
  Capacity = N ? N : 1;
  while (Ring.size() > Capacity) {
    Ring.pop_front();
    ++Dropped;
  }
}

size_t EventBus::capacity() const {
  MutexLock Lock(M);
  return Capacity;
}

void EventBus::publish(std::string Type, Json Fields) {
  if (!eventsEnabled())
    return;
  Event E;
  E.Job = currentJobId();
  E.Type = std::move(Type);
  E.Fields = std::move(Fields);

  MutexLock Lock(M);
  E.Seq = NextSeq++;
  // Stamped under the mutex so Seq order and TimeUs order agree.
  E.TimeUs = monotonicMicros();
  ++Published;
  ++TypeCounts[E.Type];
  if (File) {
    std::string Line = eventToJson(E).dump();
    Line.push_back('\n');
    fwrite(Line.data(), 1, Line.size(), File);
  }
  if (Ring.size() >= Capacity) {
    // Drop-oldest: live readers keep a recent window and the publisher
    // never blocks on a slow consumer.
    Ring.pop_front();
    ++Dropped;
    if (metricsEnabled())
      metrics().counter("obs.events_dropped").inc();
  }
  Ring.push_back(std::move(E));
}

std::vector<Event> EventBus::snapshot() const {
  MutexLock Lock(M);
  return std::vector<Event>(Ring.begin(), Ring.end());
}

uint64_t EventBus::published() const {
  MutexLock Lock(M);
  return Published;
}

uint64_t EventBus::dropped() const {
  MutexLock Lock(M);
  return Dropped;
}

uint64_t EventBus::typeCount(const std::string &Type) const {
  MutexLock Lock(M);
  auto It = TypeCounts.find(Type);
  return It == TypeCounts.end() ? 0 : It->second;
}

bool EventBus::openFile(const std::string &Path, bool Append) {
  MutexLock Lock(M);
  if (File) {
    fclose(File);
    File = nullptr;
  }
  File = fopen(Path.c_str(), Append ? "ab" : "wb");
  if (!File)
    ECO_LOG(Error) << "events: cannot open " << Path;
  return File != nullptr;
}

void EventBus::closeFile() {
  MutexLock Lock(M);
  if (File) {
    fclose(File);
    File = nullptr;
  }
}

void EventBus::flush() {
  MutexLock Lock(M);
  if (File)
    fflush(File);
}

void EventBus::clear() {
  MutexLock Lock(M);
  Ring.clear();
  Published = 0;
  Dropped = 0;
  TypeCounts.clear();
}

namespace {
std::atomic<bool> EventsOn{false};
thread_local uint64_t CurrentJob = 0;
} // namespace

bool obs::eventsEnabled() {
  return EventsOn.load(std::memory_order_relaxed);
}

void obs::setEventsEnabled(bool Enabled) {
  EventsOn.store(Enabled, std::memory_order_relaxed);
}

void obs::publishEvent(std::string Type, Json Fields) {
  EventBus::global().publish(std::move(Type), std::move(Fields));
}

ScopedJobId::ScopedJobId(uint64_t Id) : Prev(CurrentJob) { CurrentJob = Id; }
ScopedJobId::~ScopedJobId() { CurrentJob = Prev; }

uint64_t obs::currentJobId() { return CurrentJob; }
