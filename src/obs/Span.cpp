//===- obs/Span.cpp - Scoped spans + Chrome trace export ------------------===//

#include "obs/Span.h"
#include "obs/Log.h"

using namespace eco;
using namespace eco::obs;

SpanCollector &SpanCollector::global() {
  static SpanCollector Collector;
  return Collector;
}

void SpanCollector::record(SpanRecord R) {
  MutexLock Lock(M);
  Records.push_back(std::move(R));
}

void SpanCollector::setThreadName(int Tid, std::string Name) {
  MutexLock Lock(M);
  ThreadNames[Tid] = std::move(Name);
}

std::vector<SpanRecord> SpanCollector::records() const {
  MutexLock Lock(M);
  return Records;
}

size_t SpanCollector::numRecords() const {
  MutexLock Lock(M);
  return Records.size();
}

void SpanCollector::clear() {
  MutexLock Lock(M);
  Records.clear();
  ThreadNames.clear();
}

Json SpanCollector::chromeTraceJson() const {
  MutexLock Lock(M);
  Json Events = Json::array();
  for (const auto &[Tid, Name] : ThreadNames) {
    Json Meta = Json::object();
    Meta.set("ph", "M");
    Meta.set("pid", 1);
    Meta.set("tid", Tid);
    Meta.set("name", "thread_name");
    Json Args = Json::object();
    Args.set("name", Name);
    Meta.set("args", std::move(Args));
    Events.push(std::move(Meta));
  }
  for (const SpanRecord &R : Records) {
    Json E = Json::object();
    E.set("ph", "X");
    E.set("pid", 1);
    E.set("tid", R.Tid);
    E.set("ts", R.StartUs);
    E.set("dur", R.DurUs);
    E.set("name", R.Name);
    if (!R.Cat.empty())
      E.set("cat", R.Cat);
    if (!R.Detail.empty()) {
      Json Args = Json::object();
      Args.set("detail", R.Detail);
      E.set("args", std::move(Args));
    }
    Events.push(std::move(E));
  }
  Json Root = Json::object();
  Root.set("displayTimeUnit", "ms");
  Root.set("traceEvents", std::move(Events));
  return Root;
}

bool SpanCollector::writeChromeTrace(const std::string &Path) const {
  bool Ok = chromeTraceJson().saveFile(Path);
  if (!Ok)
    ECO_LOG(Error) << "cannot write Chrome trace to " << Path;
  return Ok;
}

int eco::obs::currentThreadTid() {
  static std::atomic<int> NextTid{0};
  thread_local int Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

SpanScope::SpanScope(std::string Name, std::string Cat, std::string Detail,
                     int Tid)
    : Active(SpanCollector::global().enabled()) {
  if (!Active)
    return;
  R.Name = std::move(Name);
  R.Cat = std::move(Cat);
  R.Detail = std::move(Detail);
  R.Tid = Tid >= 0 ? Tid : currentThreadTid();
  R.StartUs = monotonicMicros();
}

SpanScope::~SpanScope() {
  if (!Active)
    return;
  R.DurUs = monotonicMicros() - R.StartUs;
  SpanCollector::global().record(std::move(R));
}

void SpanScope::setDetail(std::string Detail) {
  if (Active)
    R.Detail = std::move(Detail);
}
