# Empty compiler generated dependencies file for eco_cli.
# This may be replaced when dependencies are built.
