file(REMOVE_RECURSE
  "CMakeFiles/eco_cli.dir/eco_cli.cpp.o"
  "CMakeFiles/eco_cli.dir/eco_cli.cpp.o.d"
  "eco_cli"
  "eco_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
