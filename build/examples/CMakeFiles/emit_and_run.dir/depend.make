# Empty dependencies file for emit_and_run.
# This may be replaced when dependencies are built.
