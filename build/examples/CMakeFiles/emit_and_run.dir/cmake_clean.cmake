file(REMOVE_RECURSE
  "CMakeFiles/emit_and_run.dir/emit_and_run.cpp.o"
  "CMakeFiles/emit_and_run.dir/emit_and_run.cpp.o.d"
  "emit_and_run"
  "emit_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
