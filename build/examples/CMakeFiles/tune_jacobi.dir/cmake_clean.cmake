file(REMOVE_RECURSE
  "CMakeFiles/tune_jacobi.dir/tune_jacobi.cpp.o"
  "CMakeFiles/tune_jacobi.dir/tune_jacobi.cpp.o.d"
  "tune_jacobi"
  "tune_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
