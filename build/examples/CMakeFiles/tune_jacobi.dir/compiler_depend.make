# Empty compiler generated dependencies file for tune_jacobi.
# This may be replaced when dependencies are built.
