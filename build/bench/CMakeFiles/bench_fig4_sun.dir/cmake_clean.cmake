file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sun.dir/bench_fig4_sun.cpp.o"
  "CMakeFiles/bench_fig4_sun.dir/bench_fig4_sun.cpp.o.d"
  "bench_fig4_sun"
  "bench_fig4_sun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
