# Empty compiler generated dependencies file for bench_fig4_sun.
# This may be replaced when dependencies are built.
