# Empty dependencies file for bench_native_host.
# This may be replaced when dependencies are built.
