file(REMOVE_RECURSE
  "CMakeFiles/bench_native_host.dir/bench_native_host.cpp.o"
  "CMakeFiles/bench_native_host.dir/bench_native_host.cpp.o.d"
  "bench_native_host"
  "bench_native_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
