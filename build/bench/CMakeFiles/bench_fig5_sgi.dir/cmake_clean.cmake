file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sgi.dir/bench_fig5_sgi.cpp.o"
  "CMakeFiles/bench_fig5_sgi.dir/bench_fig5_sgi.cpp.o.d"
  "bench_fig5_sgi"
  "bench_fig5_sgi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
