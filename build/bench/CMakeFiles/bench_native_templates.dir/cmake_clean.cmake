file(REMOVE_RECURSE
  "CMakeFiles/bench_native_templates.dir/bench_native_templates.cpp.o"
  "CMakeFiles/bench_native_templates.dir/bench_native_templates.cpp.o.d"
  "bench_native_templates"
  "bench_native_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
