# Empty compiler generated dependencies file for bench_native_templates.
# This may be replaced when dependencies are built.
