
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_heuristics.cpp" "tests/CMakeFiles/test_heuristics.dir/test_heuristics.cpp.o" "gcc" "tests/CMakeFiles/test_heuristics.dir/test_heuristics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eco_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
