file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_kernels.dir/test_fuzz_kernels.cpp.o"
  "CMakeFiles/test_fuzz_kernels.dir/test_fuzz_kernels.cpp.o.d"
  "test_fuzz_kernels"
  "test_fuzz_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
