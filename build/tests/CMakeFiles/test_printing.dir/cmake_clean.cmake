file(REMOVE_RECURSE
  "CMakeFiles/test_printing.dir/test_printing.cpp.o"
  "CMakeFiles/test_printing.dir/test_printing.cpp.o.d"
  "test_printing"
  "test_printing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_printing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
