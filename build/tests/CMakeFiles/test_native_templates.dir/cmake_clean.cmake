file(REMOVE_RECURSE
  "CMakeFiles/test_native_templates.dir/test_native_templates.cpp.o"
  "CMakeFiles/test_native_templates.dir/test_native_templates.cpp.o.d"
  "test_native_templates"
  "test_native_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_native_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
