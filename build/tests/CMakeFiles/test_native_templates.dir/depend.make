# Empty dependencies file for test_native_templates.
# This may be replaced when dependencies are built.
