# Empty dependencies file for eco_support.
# This may be replaced when dependencies are built.
