file(REMOVE_RECURSE
  "CMakeFiles/eco_support.dir/support/Chart.cpp.o"
  "CMakeFiles/eco_support.dir/support/Chart.cpp.o.d"
  "CMakeFiles/eco_support.dir/support/StringUtils.cpp.o"
  "CMakeFiles/eco_support.dir/support/StringUtils.cpp.o.d"
  "CMakeFiles/eco_support.dir/support/Table.cpp.o"
  "CMakeFiles/eco_support.dir/support/Table.cpp.o.d"
  "libeco_support.a"
  "libeco_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
