file(REMOVE_RECURSE
  "libeco_support.a"
)
