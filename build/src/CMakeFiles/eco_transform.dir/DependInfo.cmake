
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/Copy.cpp" "src/CMakeFiles/eco_transform.dir/transform/Copy.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/Copy.cpp.o.d"
  "/root/repo/src/transform/Pad.cpp" "src/CMakeFiles/eco_transform.dir/transform/Pad.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/Pad.cpp.o.d"
  "/root/repo/src/transform/Permute.cpp" "src/CMakeFiles/eco_transform.dir/transform/Permute.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/Permute.cpp.o.d"
  "/root/repo/src/transform/Prefetch.cpp" "src/CMakeFiles/eco_transform.dir/transform/Prefetch.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/Prefetch.cpp.o.d"
  "/root/repo/src/transform/ScalarReplace.cpp" "src/CMakeFiles/eco_transform.dir/transform/ScalarReplace.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/ScalarReplace.cpp.o.d"
  "/root/repo/src/transform/Tile.cpp" "src/CMakeFiles/eco_transform.dir/transform/Tile.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/Tile.cpp.o.d"
  "/root/repo/src/transform/UnrollJam.cpp" "src/CMakeFiles/eco_transform.dir/transform/UnrollJam.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/UnrollJam.cpp.o.d"
  "/root/repo/src/transform/Utils.cpp" "src/CMakeFiles/eco_transform.dir/transform/Utils.cpp.o" "gcc" "src/CMakeFiles/eco_transform.dir/transform/Utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eco_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
