file(REMOVE_RECURSE
  "libeco_transform.a"
)
