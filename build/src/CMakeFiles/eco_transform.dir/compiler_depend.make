# Empty compiler generated dependencies file for eco_transform.
# This may be replaced when dependencies are built.
