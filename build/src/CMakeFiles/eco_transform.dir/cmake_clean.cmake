file(REMOVE_RECURSE
  "CMakeFiles/eco_transform.dir/transform/Copy.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/Copy.cpp.o.d"
  "CMakeFiles/eco_transform.dir/transform/Pad.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/Pad.cpp.o.d"
  "CMakeFiles/eco_transform.dir/transform/Permute.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/Permute.cpp.o.d"
  "CMakeFiles/eco_transform.dir/transform/Prefetch.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/Prefetch.cpp.o.d"
  "CMakeFiles/eco_transform.dir/transform/ScalarReplace.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/ScalarReplace.cpp.o.d"
  "CMakeFiles/eco_transform.dir/transform/Tile.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/Tile.cpp.o.d"
  "CMakeFiles/eco_transform.dir/transform/UnrollJam.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/UnrollJam.cpp.o.d"
  "CMakeFiles/eco_transform.dir/transform/Utils.cpp.o"
  "CMakeFiles/eco_transform.dir/transform/Utils.cpp.o.d"
  "libeco_transform.a"
  "libeco_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
