file(REMOVE_RECURSE
  "libeco_core.a"
)
