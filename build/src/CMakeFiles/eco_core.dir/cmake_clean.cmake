file(REMOVE_RECURSE
  "CMakeFiles/eco_core.dir/core/DeriveVariants.cpp.o"
  "CMakeFiles/eco_core.dir/core/DeriveVariants.cpp.o.d"
  "CMakeFiles/eco_core.dir/core/Heuristics.cpp.o"
  "CMakeFiles/eco_core.dir/core/Heuristics.cpp.o.d"
  "CMakeFiles/eco_core.dir/core/Report.cpp.o"
  "CMakeFiles/eco_core.dir/core/Report.cpp.o.d"
  "CMakeFiles/eco_core.dir/core/Search.cpp.o"
  "CMakeFiles/eco_core.dir/core/Search.cpp.o.d"
  "CMakeFiles/eco_core.dir/core/Tuner.cpp.o"
  "CMakeFiles/eco_core.dir/core/Tuner.cpp.o.d"
  "CMakeFiles/eco_core.dir/core/Variant.cpp.o"
  "CMakeFiles/eco_core.dir/core/Variant.cpp.o.d"
  "libeco_core.a"
  "libeco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
