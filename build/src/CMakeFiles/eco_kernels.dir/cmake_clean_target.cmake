file(REMOVE_RECURSE
  "libeco_kernels.a"
)
