file(REMOVE_RECURSE
  "CMakeFiles/eco_kernels.dir/kernels/Kernels.cpp.o"
  "CMakeFiles/eco_kernels.dir/kernels/Kernels.cpp.o.d"
  "CMakeFiles/eco_kernels.dir/kernels/NativeTemplates.cpp.o"
  "CMakeFiles/eco_kernels.dir/kernels/NativeTemplates.cpp.o.d"
  "CMakeFiles/eco_kernels.dir/kernels/Reference.cpp.o"
  "CMakeFiles/eco_kernels.dir/kernels/Reference.cpp.o.d"
  "libeco_kernels.a"
  "libeco_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
