# Empty dependencies file for eco_kernels.
# This may be replaced when dependencies are built.
