file(REMOVE_RECURSE
  "libeco_analysis.a"
)
