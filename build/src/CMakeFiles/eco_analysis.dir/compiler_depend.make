# Empty compiler generated dependencies file for eco_analysis.
# This may be replaced when dependencies are built.
