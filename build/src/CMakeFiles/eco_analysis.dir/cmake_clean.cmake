file(REMOVE_RECURSE
  "CMakeFiles/eco_analysis.dir/analysis/Dependence.cpp.o"
  "CMakeFiles/eco_analysis.dir/analysis/Dependence.cpp.o.d"
  "CMakeFiles/eco_analysis.dir/analysis/Footprint.cpp.o"
  "CMakeFiles/eco_analysis.dir/analysis/Footprint.cpp.o.d"
  "CMakeFiles/eco_analysis.dir/analysis/Reuse.cpp.o"
  "CMakeFiles/eco_analysis.dir/analysis/Reuse.cpp.o.d"
  "libeco_analysis.a"
  "libeco_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
