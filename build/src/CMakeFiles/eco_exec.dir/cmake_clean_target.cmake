file(REMOVE_RECURSE
  "libeco_exec.a"
)
