
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/AddressMap.cpp" "src/CMakeFiles/eco_exec.dir/exec/AddressMap.cpp.o" "gcc" "src/CMakeFiles/eco_exec.dir/exec/AddressMap.cpp.o.d"
  "/root/repo/src/exec/Executor.cpp" "src/CMakeFiles/eco_exec.dir/exec/Executor.cpp.o" "gcc" "src/CMakeFiles/eco_exec.dir/exec/Executor.cpp.o.d"
  "/root/repo/src/exec/Run.cpp" "src/CMakeFiles/eco_exec.dir/exec/Run.cpp.o" "gcc" "src/CMakeFiles/eco_exec.dir/exec/Run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eco_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/eco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
