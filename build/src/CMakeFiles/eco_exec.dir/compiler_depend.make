# Empty compiler generated dependencies file for eco_exec.
# This may be replaced when dependencies are built.
