file(REMOVE_RECURSE
  "CMakeFiles/eco_exec.dir/exec/AddressMap.cpp.o"
  "CMakeFiles/eco_exec.dir/exec/AddressMap.cpp.o.d"
  "CMakeFiles/eco_exec.dir/exec/Executor.cpp.o"
  "CMakeFiles/eco_exec.dir/exec/Executor.cpp.o.d"
  "CMakeFiles/eco_exec.dir/exec/Run.cpp.o"
  "CMakeFiles/eco_exec.dir/exec/Run.cpp.o.d"
  "libeco_exec.a"
  "libeco_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
