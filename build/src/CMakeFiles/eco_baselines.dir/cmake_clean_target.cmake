file(REMOVE_RECURSE
  "libeco_baselines.a"
)
