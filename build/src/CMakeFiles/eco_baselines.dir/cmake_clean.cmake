file(REMOVE_RECURSE
  "CMakeFiles/eco_baselines.dir/baselines/MiniAtlas.cpp.o"
  "CMakeFiles/eco_baselines.dir/baselines/MiniAtlas.cpp.o.d"
  "CMakeFiles/eco_baselines.dir/baselines/NativeCompiler.cpp.o"
  "CMakeFiles/eco_baselines.dir/baselines/NativeCompiler.cpp.o.d"
  "CMakeFiles/eco_baselines.dir/baselines/VendorBlas.cpp.o"
  "CMakeFiles/eco_baselines.dir/baselines/VendorBlas.cpp.o.d"
  "libeco_baselines.a"
  "libeco_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
