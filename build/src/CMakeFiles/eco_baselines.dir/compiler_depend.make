# Empty compiler generated dependencies file for eco_baselines.
# This may be replaced when dependencies are built.
