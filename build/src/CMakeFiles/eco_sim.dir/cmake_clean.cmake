file(REMOVE_RECURSE
  "CMakeFiles/eco_sim.dir/sim/Cache.cpp.o"
  "CMakeFiles/eco_sim.dir/sim/Cache.cpp.o.d"
  "CMakeFiles/eco_sim.dir/sim/MemHierarchy.cpp.o"
  "CMakeFiles/eco_sim.dir/sim/MemHierarchy.cpp.o.d"
  "libeco_sim.a"
  "libeco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
