file(REMOVE_RECURSE
  "CMakeFiles/eco_machine.dir/machine/MachineDesc.cpp.o"
  "CMakeFiles/eco_machine.dir/machine/MachineDesc.cpp.o.d"
  "libeco_machine.a"
  "libeco_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
