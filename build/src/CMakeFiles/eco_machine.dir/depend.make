# Empty dependencies file for eco_machine.
# This may be replaced when dependencies are built.
