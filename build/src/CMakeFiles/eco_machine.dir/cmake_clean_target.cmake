file(REMOVE_RECURSE
  "libeco_machine.a"
)
