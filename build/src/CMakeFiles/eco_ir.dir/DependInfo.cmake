
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/AffineExpr.cpp" "src/CMakeFiles/eco_ir.dir/ir/AffineExpr.cpp.o" "gcc" "src/CMakeFiles/eco_ir.dir/ir/AffineExpr.cpp.o.d"
  "/root/repo/src/ir/Array.cpp" "src/CMakeFiles/eco_ir.dir/ir/Array.cpp.o" "gcc" "src/CMakeFiles/eco_ir.dir/ir/Array.cpp.o.d"
  "/root/repo/src/ir/Loop.cpp" "src/CMakeFiles/eco_ir.dir/ir/Loop.cpp.o" "gcc" "src/CMakeFiles/eco_ir.dir/ir/Loop.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/eco_ir.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/eco_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/ScalarExpr.cpp" "src/CMakeFiles/eco_ir.dir/ir/ScalarExpr.cpp.o" "gcc" "src/CMakeFiles/eco_ir.dir/ir/ScalarExpr.cpp.o.d"
  "/root/repo/src/ir/Stmt.cpp" "src/CMakeFiles/eco_ir.dir/ir/Stmt.cpp.o" "gcc" "src/CMakeFiles/eco_ir.dir/ir/Stmt.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/eco_ir.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/eco_ir.dir/ir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/eco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
