file(REMOVE_RECURSE
  "libeco_ir.a"
)
