# Empty dependencies file for eco_ir.
# This may be replaced when dependencies are built.
