file(REMOVE_RECURSE
  "CMakeFiles/eco_ir.dir/ir/AffineExpr.cpp.o"
  "CMakeFiles/eco_ir.dir/ir/AffineExpr.cpp.o.d"
  "CMakeFiles/eco_ir.dir/ir/Array.cpp.o"
  "CMakeFiles/eco_ir.dir/ir/Array.cpp.o.d"
  "CMakeFiles/eco_ir.dir/ir/Loop.cpp.o"
  "CMakeFiles/eco_ir.dir/ir/Loop.cpp.o.d"
  "CMakeFiles/eco_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/eco_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/eco_ir.dir/ir/ScalarExpr.cpp.o"
  "CMakeFiles/eco_ir.dir/ir/ScalarExpr.cpp.o.d"
  "CMakeFiles/eco_ir.dir/ir/Stmt.cpp.o"
  "CMakeFiles/eco_ir.dir/ir/Stmt.cpp.o.d"
  "CMakeFiles/eco_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/eco_ir.dir/ir/Verifier.cpp.o.d"
  "libeco_ir.a"
  "libeco_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
