# Empty dependencies file for eco_codegen.
# This may be replaced when dependencies are built.
