file(REMOVE_RECURSE
  "CMakeFiles/eco_codegen.dir/codegen/CEmitter.cpp.o"
  "CMakeFiles/eco_codegen.dir/codegen/CEmitter.cpp.o.d"
  "CMakeFiles/eco_codegen.dir/codegen/NativeRunner.cpp.o"
  "CMakeFiles/eco_codegen.dir/codegen/NativeRunner.cpp.o.d"
  "libeco_codegen.a"
  "libeco_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
