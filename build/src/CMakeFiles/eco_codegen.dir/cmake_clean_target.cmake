file(REMOVE_RECURSE
  "libeco_codegen.a"
)
