//===- examples/tune_jacobi.cpp - Stencil tuning and what-if analysis -----===//
//
// Tunes the 3-D Jacobi relaxation (the paper's second case study) on both
// simulated machines, shows the variant zoo the tie-breaking rules create
// (all three loops carry reuse -> multiple loop orders), and runs a
// what-if comparison of every variant at its heuristic configuration.
//
//===----------------------------------------------------------------------===//

#include "core/Tuner.h"
#include "exec/Run.h"
#include "kernels/Kernels.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace eco;

int main() {
  LoopNest Jacobi = makeJacobi();
  std::printf("original kernel:\n%s\n", Jacobi.print().c_str());

  const int64_t N = 96;
  for (MachineDesc Machine : {MachineDesc::sgiR10000().scaledBy(16),
                              MachineDesc::ultraSparcIIe().scaledBy(16)}) {
    std::printf("=== %s ===\n", Machine.summary().c_str());
    SimEvalBackend Backend(Machine);

    // Phase 1 alone: look at the variants before searching.
    std::vector<DerivedVariant> Variants =
        deriveVariants(Jacobi, Machine);
    std::printf("%zu variants derived. Heuristic-point comparison:\n",
                Variants.size());
    for (const DerivedVariant &V : Variants) {
      Env Init = initialConfig(V, Machine, {{"N", N}});
      double Cost = V.feasible(Init)
                        ? Backend.evaluate(V.instantiate(Init, Machine),
                                           Init)
                        : -1;
      std::vector<std::string> Order;
      for (SymbolId S : V.Spec.FinalOrder)
        Order.push_back(V.Skeleton.Syms.name(S));
      std::printf("  %-4s order %-18s %12.0f cycles\n",
                  V.Spec.Name.c_str(), join(Order, " ").c_str(), Cost);
    }

    // Full two-phase tuning.
    TuneResult R = tune(Jacobi, Backend, {{"N", N}});
    RunResult Naive = simulateNest(Jacobi, {{"N", N}}, Machine);
    std::printf("tuned: %s -> %.2fx over the untransformed kernel\n\n",
                R.best().configString(R.BestConfig).c_str(),
                Naive.Cycles / R.BestCost);
  }
  return 0;
}
