//===- examples/quickstart.cpp - Two-phase tuning in a dozen lines --------===//
//
// The shortest end-to-end use of the library: take the textbook Matrix
// Multiply, run the paper's two-phase optimization against a simulated
// SGI R10000, and inspect what came out.
//
//   build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Tuner.h"
#include "exec/Run.h"
#include "kernels/Kernels.h"

#include <cstdio>

using namespace eco;

int main() {
  // The kernel as a compiler would see it (Figure 1(a)).
  LoopNest MM = makeMatMul();
  std::printf("original kernel:\n%s\n", MM.print().c_str());

  // A machine to optimize for: the paper's SGI R10000, capacities scaled
  // 1/16 so the search takes seconds.
  MachineDesc Machine = MachineDesc::sgiR10000().scaledBy(16);
  SimEvalBackend Backend(Machine);

  // Phase 1 (models -> variants + constraints) and phase 2 (guided
  // empirical search), in one call.
  const int64_t N = 160;
  TuneResult Result = tune(MM, Backend, {{"N", N}});

  std::printf("derived %zu variants; searched %zu points in %.1fs\n",
              Result.Variants.size(), Result.TotalPoints,
              Result.TotalSeconds);
  std::printf("winner: %s\n\n",
              Result.best().configString(Result.BestConfig).c_str());
  std::printf("winning variant:\n%s\n", Result.best().describe().c_str());

  // How much did it help?
  RunResult Naive = simulateNest(MM, {{"N", N}}, Machine);
  std::printf("naive:     %8.0f kcycles  (%.0f MFLOPS)\n",
              Naive.Cycles / 1e3, Naive.Mflops);
  std::printf("ECO-tuned: %8.0f kcycles  (%.0f MFLOPS)  -> %.2fx\n",
              Result.BestCost / 1e3,
              Naive.Counters.Flops * Machine.ClockMHz / Result.BestCost,
              Naive.Cycles / Result.BestCost);

  std::printf("\noptimized code (tile sizes symbolic):\n%s",
              Result.BestExecutable.print().c_str());
  return 0;
}
