//===- examples/eco_worker.cpp - Remote evaluation worker ------------------===//
//
// Standalone fleet worker: connects to an eco_served daemon, registers,
// long-polls for evaluation batches, and reports simulated costs. Run as
// many as you like against one daemon; the dispatcher shards warm
// batches across whatever is registered and survives any of them dying
// mid-batch (serve/Fleet.h documents the failure model).
//
//   eco_worker [--socket=PATH | --host=H --port=P] [--name=S]
//              [--poll-ms=MS] [--timeout-ms=MS] [--max-batches=N]
//              [--chaos=garbage|freeze|vanish] [--chaos-after=N]
//
// Equivalent spelling: `eco_cli worker [flags]`.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "serve/Worker.h"

#include <vector>

int main(int Argc, char **Argv) {
  eco::obs::setLogLevelByName("info");
  return eco::serve::workerToolMain(
      std::vector<std::string>(Argv + 1, Argv + Argc));
}
