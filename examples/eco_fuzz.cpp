//===- examples/eco_fuzz.cpp - Randomized transform-pipeline fuzzer -------===//
//
// Seeded, deterministic fuzzing of the transformation pipeline: random
// loop nests, random transform sequences (illegal requests must be
// rejected with TransformError, never crash), and a differential oracle
// running every case through the interpreter — and periodically the
// CEmitter -> cc native path — element-wise under the ulp policy.
//
//   eco_fuzz [--seed=S] [--iters=N] [--iter=K] [--native-every=N]
//            [--max-ulps=U] [--verbose]
//
//   --iter=K       run exactly iteration K (the one-line reproducer form)
//   --native-every=N  compile + run the native leg every Nth iteration
//                     (0 disables the native leg)
//
// On failure: greedy-shrunk reproducer (pipeline steps, then parameters,
// then loop bounds), the minimized nest, and a one-line seed repro.
// Exit status: 0 clean, 1 failures found, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "check/Fuzz.h"
#include "support/ParseInt.h"

#include <cstdio>
#include <string>

using namespace eco;
using namespace eco::check;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: eco_fuzz [--seed=S] [--iters=N] [--iter=K]\n"
               "                [--native-every=N] [--max-ulps=U]\n"
               "                [--verbose]\n");
}

bool parseArg(FuzzOptions &Opts, const std::string &Arg) {
  auto valueOf = [&Arg](const char *Key) -> const char * {
    size_t Len = std::string(Key).size();
    return Arg.compare(0, Len, Key) == 0 ? Arg.c_str() + Len : nullptr;
  };
  int64_t V = 0;
  if (const char *S = valueOf("--seed=")) {
    if (!parseIntInRange(S, 0, INT64_MAX, &V))
      return false;
    Opts.Seed = static_cast<uint64_t>(V);
    return true;
  }
  if (const char *S = valueOf("--iters=")) {
    if (!parseIntInRange(S, 1, 10000000, &V))
      return false;
    Opts.Iters = static_cast<int>(V);
    return true;
  }
  if (const char *S = valueOf("--iter=")) {
    if (!parseIntInRange(S, 0, 10000000, &V))
      return false;
    Opts.OnlyIter = static_cast<int>(V);
    return true;
  }
  if (const char *S = valueOf("--native-every=")) {
    if (!parseIntInRange(S, 0, 1000000, &V))
      return false;
    Opts.NativeEvery = static_cast<int>(V);
    return true;
  }
  if (const char *S = valueOf("--max-ulps=")) {
    if (!parseIntInRange(S, 0, INT64_MAX, &V))
      return false;
    Opts.MaxUlps = static_cast<uint64_t>(V);
    return true;
  }
  if (Arg == "--verbose") {
    Opts.Verbose = true;
    return true;
  }
  return false;
}

} // namespace

int main(int argc, char **argv) {
  FuzzOptions Opts;
  for (int A = 1; A < argc; ++A)
    if (!parseArg(Opts, argv[A])) {
      std::fprintf(stderr, "eco_fuzz: bad argument '%s'\n", argv[A]);
      usage();
      return 2;
    }

  FuzzReport Report = runFuzz(Opts);
  std::fputs(Report.summary().c_str(), stdout);
  for (const FuzzFailure &F : Report.Failures) {
    std::fprintf(stdout, "--- minimized nest (iter %d) ---\n%s\n", F.Iter,
                 F.NestDump.c_str());
  }
  return Report.ok() ? 0 : 1;
}
