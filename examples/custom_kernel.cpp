//===- examples/custom_kernel.cpp - Bring your own loop nest --------------===//
//
// The library is not limited to the paper's two kernels: any dense affine
// loop nest built through the IR API goes through the same analysis,
// variant derivation, and search. This example defines a 2-D 5-point
// stencil from scratch, tunes it, and verifies the tuned code computes
// exactly what the plain nest computes.
//
//===----------------------------------------------------------------------===//

#include "core/Tuner.h"
#include "exec/Run.h"

#include <cstdio>

using namespace eco;

namespace {

/// Builds:  DO J = 1,N-2 ; DO I = 1,N-2
///            Out[I,J] = 0.25*(In[I-1,J]+In[I+1,J]+In[I,J-1]+In[I,J+1])
LoopNest makeStencil2D(SymbolId &NOut, ArrayId &InId, ArrayId &OutId) {
  LoopNest Nest;
  Nest.Name = "stencil2d";
  SymbolId N = Nest.declareProblemSize("N");
  SymbolId J = Nest.declareLoopVar("J");
  SymbolId I = Nest.declareLoopVar("I");

  AffineExpr NExpr = AffineExpr::sym(N);
  ArrayId In = Nest.declareArray({"In", {NExpr, NExpr}});
  ArrayId Out = Nest.declareArray({"Out", {NExpr, NExpr}});

  AffineExpr IE = AffineExpr::sym(I), JE = AffineExpr::sym(J);
  auto Read = [&](AffineExpr Si, AffineExpr Sj) {
    return ScalarExpr::makeRead(ArrayRef(In, {std::move(Si),
                                              std::move(Sj)}));
  };
  auto Sum = [](std::unique_ptr<ScalarExpr> L,
                std::unique_ptr<ScalarExpr> R) {
    return ScalarExpr::makeBinary(ScalarExprKind::Add, std::move(L),
                                  std::move(R));
  };
  auto Rhs = ScalarExpr::makeBinary(
      ScalarExprKind::Mul, ScalarExpr::makeConst(0.25),
      Sum(Sum(Read(IE - 1, JE), Read(IE + 1, JE)),
          Sum(Read(IE, JE - 1), Read(IE, JE + 1))));
  auto Compute = Stmt::makeCompute(ArrayRef(Out, {IE, JE}),
                                   std::move(Rhs));

  auto LoopI = std::make_unique<Loop>(I, AffineExpr::constant(1),
                                      Bound(NExpr - 2));
  LoopI->Items.push_back(BodyItem(std::move(Compute)));
  auto LoopJ = std::make_unique<Loop>(J, AffineExpr::constant(1),
                                      Bound(NExpr - 2));
  LoopJ->Items.push_back(BodyItem(std::move(LoopI)));
  Nest.Items.push_back(BodyItem(std::move(LoopJ)));

  NOut = N;
  InId = In;
  OutId = Out;
  return Nest;
}

} // namespace

int main() {
  SymbolId NSym;
  ArrayId InId, OutId;
  LoopNest Stencil = makeStencil2D(NSym, InId, OutId);
  std::printf("custom kernel:\n%s\n", Stencil.print().c_str());

  MachineDesc Machine = MachineDesc::sgiR10000().scaledBy(16);
  SimEvalBackend Backend(Machine);

  const int64_t N = 512;
  TuneResult R = tune(Stencil, Backend, {{"N", N}});
  RunResult Naive = simulateNest(Stencil, {{"N", N}}, Machine);
  std::printf("tuned %s: %.0f -> %.0f kcycles (%.2fx)\n\n",
              R.best().configString(R.BestConfig).c_str(),
              Naive.Cycles / 1e3, R.BestCost / 1e3,
              Naive.Cycles / R.BestCost);

  // Verify the tuned code bit-for-bit at a small size.
  const int64_t NV = 20;
  Env Cfg = R.BestConfig;
  Cfg.set(NSym, NV);
  MemHierarchySim Sim(Machine);
  ExecOptions Opts;
  Opts.ComputeValues = true;
  Executor Tuned(R.BestExecutable, Cfg, Sim, Opts);
  for (int64_t X = 0; X < NV * NV; ++X)
    Tuned.dataOf(InId)[X] = 0.01 * static_cast<double>(X % 97);
  Tuned.run();

  MemHierarchySim Sim2(Machine);
  Executor Plain(Stencil, makeEnv(Stencil, {{"N", NV}}), Sim2, Opts);
  Plain.dataOf(InId) = Tuned.dataOf(InId);
  Plain.run();

  for (int64_t X = 0; X < NV * NV; ++X)
    if (Tuned.dataOf(OutId)[X] != Plain.dataOf(OutId)[X]) {
      std::printf("MISMATCH at %lld\n", static_cast<long long>(X));
      return 1;
    }
  std::printf("verification: tuned output is bit-identical to the plain "
              "nest at N=%lld\n",
              static_cast<long long>(NV));
  return 0;
}
