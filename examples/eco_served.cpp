//===- examples/eco_served.cpp - Tuning-as-a-service daemon ----------------===//
//
// Standalone spelling of `eco_cli serve`: a daemon that accepts tuning
// requests over a unix/TCP socket, answers repeats from its persistent
// tuned-config database, warm-starts nearby sizes, and drains gracefully
// on SIGTERM. All behavior lives in serve/Tool.cpp.
//
//===----------------------------------------------------------------------===//

#include "serve/Tool.h"

#include <string>
#include <vector>

int main(int Argc, char **Argv) {
  return eco::serve::serveToolMain(
      std::vector<std::string>(Argv + 1, Argv + Argc));
}
