//===- examples/eco_check_tool.cpp - The eco_check self-check driver ------===//
//
// Differential self-checking for the whole pipeline (built as `eco_check`;
// the target carries a _tool suffix only because the src/check library owns
// the plain name). Three legs, all on by default:
//
//   diff     every kernel x sampled feasible configs, simulator-executed
//            and natively compiled results compared element-wise against
//            the golden reference under an ulp tolerance
//   replay   a real tune at --jobs 1 and --jobs N: winners must be
//            bit-identical and both JSONL traces must pass the invariant
//            audit (dense seqs, consistent costs, ordered stages,
//            trace minimum == reported best)
//   faults   truncated / corrupted / concurrently rewritten cache and
//            checkpoint files: loaders must recover, never crash, never
//            silently resurrect damaged state
//
//   eco_check [--kernel=all|matmul|jacobi|matvec] [--seed=S] [--configs=N]
//             [--n=SIZE] [--scale=K] [--max-ulps=U] [--max-variants=V]
//             [--jobs=N] [--skip-native] [--skip-diff] [--skip-replay]
//             [--skip-faults] [--fleet] [--fuzz=ROUNDS] [--audit-trace=FILE]
//             [--audit-db=FILE] [--audit-events=FILE] [--tmpdir=DIR]
//             [--log-level=off|error|warn|info|debug]
//
//   --fleet         extra leg: eval-worker fleet chaos sweep (a vanishing,
//                   a frozen, and a garbage-reporting worker each paired
//                   with an honest one) — the tune must complete with a
//                   winner bit-identical to a fleetless run
//   --fuzz=R        run R extra diff rounds with fresh random seeds
//   --audit-trace=F audit an existing JSONL trace file and exit
//   --audit-db=F    replay-audit a tuned-config database (ConfigDB JSON)
//                   and exit: every stored best cost must be bitwise
//                   reproducible through a fresh simulator
//   --audit-events=F audit a flight-recorder events file (JSONL) and
//                   exit: schema, monotonic seq/timestamps, rejected-
//                   event <-> counter pairing, and stream totals that
//                   reconcile with each tune.done record
//
// Exit status: 0 all checks clean, 1 any mismatch/issue, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "check/DbAudit.h"
#include "check/DiffCheck.h"
#include "check/EventAudit.h"
#include "check/FaultInject.h"
#include "check/TraceAudit.h"
#include "kernels/Kernels.h"
#include "obs/Log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace eco;
using namespace eco::check;

namespace {

struct ToolOptions {
  DiffCheckOptions Diff;
  int Jobs = 2;
  int FuzzRounds = 0;
  bool RunDiff = true;
  bool RunReplay = true;
  bool RunFaults = true;
  bool RunFleet = false;
  std::string AuditTrace;
  std::string AuditDb;
  std::string AuditEvents;
  std::string TmpDir;
};

bool parseArg(ToolOptions &Opts, const std::string &Arg) {
  auto valueOf = [&Arg](const char *Key) -> const char * {
    size_t Len = std::strlen(Key);
    return Arg.compare(0, Len, Key) == 0 ? Arg.c_str() + Len : nullptr;
  };

  if (const char *V = valueOf("--kernel=")) {
    Opts.Diff.KernelFilter = std::strcmp(V, "all") ? V : "";
    return true;
  }
  if (const char *V = valueOf("--seed=")) {
    Opts.Diff.Seed = std::strtoull(V, nullptr, 10);
    return true;
  }
  if (const char *V = valueOf("--configs=")) {
    Opts.Diff.RandomConfigsPerVariant = std::atoi(V);
    return true;
  }
  if (const char *V = valueOf("--n=")) {
    Opts.Diff.ProblemSize = std::atoll(V);
    return true;
  }
  if (const char *V = valueOf("--scale=")) {
    Opts.Diff.MachineScale = static_cast<unsigned>(std::atoi(V));
    return true;
  }
  if (const char *V = valueOf("--max-ulps=")) {
    Opts.Diff.MaxUlps = std::strtoull(V, nullptr, 10);
    return true;
  }
  if (const char *V = valueOf("--max-variants=")) {
    Opts.Diff.MaxVariantsPerKernel = static_cast<unsigned>(std::atoi(V));
    return true;
  }
  if (const char *V = valueOf("--jobs=")) {
    Opts.Jobs = std::atoi(V);
    return true;
  }
  if (const char *V = valueOf("--fuzz=")) {
    Opts.FuzzRounds = std::atoi(V);
    return true;
  }
  if (Arg == "--fuzz") {
    Opts.FuzzRounds = 4;
    return true;
  }
  if (const char *V = valueOf("--audit-trace=")) {
    Opts.AuditTrace = V;
    return true;
  }
  if (const char *V = valueOf("--audit-db=")) {
    Opts.AuditDb = V;
    return true;
  }
  if (const char *V = valueOf("--audit-events=")) {
    Opts.AuditEvents = V;
    return true;
  }
  if (const char *V = valueOf("--tmpdir=")) {
    Opts.TmpDir = V;
    return true;
  }
  if (const char *V = valueOf("--log-level="))
    return obs::setLogLevelByName(V);
  if (Arg == "--skip-native") {
    Opts.Diff.CheckNative = false;
    return true;
  }
  if (Arg == "--skip-diff") {
    Opts.RunDiff = false;
    return true;
  }
  if (Arg == "--skip-replay") {
    Opts.RunReplay = false;
    return true;
  }
  if (Arg == "--skip-faults") {
    Opts.RunFaults = false;
    return true;
  }
  if (Arg == "--fleet") {
    Opts.RunFleet = true;
    return true;
  }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  for (int A = 1; A < Argc; ++A) {
    if (!parseArg(Opts, Argv[A])) {
      std::fprintf(
          stderr,
          "usage: %s [--kernel=all|matmul|jacobi|matvec] [--seed=S] "
          "[--configs=N] [--n=SIZE] [--scale=K] [--max-ulps=U] "
          "[--max-variants=V] [--jobs=N] [--skip-native] [--skip-diff] "
          "[--skip-replay] [--skip-faults] [--fleet] [--fuzz[=ROUNDS]] "
          "[--audit-trace=FILE] [--audit-db=FILE] [--audit-events=FILE] "
          "[--tmpdir=DIR] "
          "[--log-level=off|error|warn|info|debug]\n",
          Argv[0]);
      return 2;
    }
  }

  // --audit-trace / --audit-db are standalone modes: audit and report.
  if (!Opts.AuditTrace.empty()) {
    TraceAuditReport Report = auditTraceFile(Opts.AuditTrace);
    std::printf("%s", Report.summary().c_str());
    return Report.ok() ? 0 : 1;
  }
  if (!Opts.AuditDb.empty()) {
    DbAuditReport Report = auditConfigDBFile(Opts.AuditDb);
    std::printf("%s", Report.summary().c_str());
    return Report.ok() ? 0 : 1;
  }
  if (!Opts.AuditEvents.empty()) {
    EventAuditReport Report = auditEventsFile(Opts.AuditEvents);
    std::printf("%s", Report.summary().c_str());
    return Report.ok() ? 0 : 1;
  }

  bool AllOk = true;

  if (Opts.RunDiff) {
    DiffCheckReport Report = runDiffCheck(Opts.Diff);
    std::printf("%s", Report.summary().c_str());
    AllOk = AllOk && Report.ok();

    DiffCheckOptions Fuzz = Opts.Diff;
    for (int Round = 0; Round < Opts.FuzzRounds; ++Round) {
      Fuzz.Seed = Opts.Diff.Seed * 7919 + 1 + static_cast<uint64_t>(Round);
      DiffCheckReport FR = runDiffCheck(Fuzz);
      std::printf("fuzz round %d (seed %llu): %s", Round + 1,
                  static_cast<unsigned long long>(Fuzz.Seed),
                  FR.summary().c_str());
      AllOk = AllOk && FR.ok();
    }
  }

  // The replay and fault legs need a scratch directory.
  std::string TmpDir = Opts.TmpDir;
  bool MadeTmp = false;
  if ((Opts.RunReplay || Opts.RunFaults || Opts.RunFleet) &&
      TmpDir.empty()) {
    char Template[] = "/tmp/eco_check.XXXXXX";
    if (char *D = mkdtemp(Template)) {
      TmpDir = D;
      MadeTmp = true;
    } else {
      std::fprintf(stderr, "error: cannot create scratch dir\n");
      return 1;
    }
  }

  if (Opts.RunReplay) {
    MachineDesc Machine =
        MachineDesc::sgiR10000().scaledBy(Opts.Diff.MachineScale);
    for (const CheckKernel &K : checkKernels()) {
      if (!Opts.Diff.KernelFilter.empty() &&
          K.Name != Opts.Diff.KernelFilter)
        continue;
      JobsDeterminismResult R = checkJobsDeterminism(
          K.Nest, Machine, {{"N", Opts.Diff.ProblemSize}}, Opts.Jobs,
          TmpDir);
      std::printf("%s: %s", K.Name.c_str(), R.summary().c_str());
      AllOk = AllOk && R.ok();
    }
  }

  if (Opts.RunFaults) {
    FaultCheckReport Report = runPersistenceFaultChecks(TmpDir);
    std::printf("%s", Report.summary().c_str());
    AllOk = AllOk && Report.ok();
  }

  if (Opts.RunFleet) {
    FaultCheckReport Report = runFleetFaultChecks(TmpDir);
    std::printf("%s", Report.summary().c_str());
    AllOk = AllOk && Report.ok();
  }

  if (MadeTmp) {
    // Best-effort scratch cleanup; a leftover /tmp dir is harmless.
    std::string Cmd = "rm -rf '" + TmpDir + "'";
    if (std::system(Cmd.c_str()) != 0)
      std::fprintf(stderr, "note: could not remove %s\n", TmpDir.c_str());
  }

  std::printf("eco_check: %s\n", AllOk ? "OK" : "FAILED");
  return AllOk ? 0 : 1;
}
