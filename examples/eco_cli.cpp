//===- examples/eco_cli.cpp - Command-line autotuner -----------------------===//
//
// A small driver exposing the whole pipeline from the command line:
//
//   eco_cli [--kernel=matmul|jacobi|matvec] [--machine=sgi|sun|host]
//           [--n=SIZE] [--scale=K] [--native] [--emit-c] [--variants]
//           [--trace] [--jobs=N] [--cache-file=F] [--trace-file=F]
//           [--checkpoint=F] [--resume] [--metrics-file=F]
//           [--chrome-trace=F] [--events-file=F]
//           [--log-level=LVL] [--progress]
//   eco_cli report EVENTS.jsonl [--html] [--out=F]
//
//   --variants     print the derived variant set (Table 4 style) and exit
//   --emit-c       print the winning variant as C source
//   --native       tune with the compile-and-run backend on this machine
//   --trace        dump every evaluated search point (CSV: config,cost)
//   --jobs=N       evaluate candidate batches on N threads (engine)
//   --cache-file=F persist the evaluation cache to F (JSON); re-runs on
//                  identical input replay from it nearly for free
//   --trace-file=F stream structured per-point records to F (JSONL)
//   --checkpoint=F write per-variant tune state to F after each search
//   --resume       load --checkpoint (and --cache-file) state and skip
//                  already-searched variants (--trace-file appends)
//   --metrics-file=F  dump the metrics registry (counters/gauges/
//                  histograms) to F as JSON after the tune
//   --chrome-trace=F  export the tune's span timeline to F in Chrome
//                  trace-event JSON (open in Perfetto/chrome://tracing)
//   --events-file=F  flight recorder: stream every search decision
//                  (variants derived/rejected, configs evaluated, winner
//                  updates, tune.done totals) to F as JSONL; render with
//                  `eco_cli report F`, audit with eco_check
//   report F       turn a flight-recorder stream into a tune report
//                  (Markdown; --html for HTML, --out=F to write a file).
//                  Exits 1 when the stream does not reconcile with the
//                  tuner's own tune.done totals.
//   --log-level=L  stderr diagnostics: off|error|warn|info|debug
//                  (default warn, or the ECO_LOG_LEVEL env var)
//   --progress     periodic progress/ETA line on stderr while tuning
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "core/Report.h"
#include "core/Tuner.h"
#include "engine/Checkpoint.h"
#include "engine/Engine.h"
#include "exec/Run.h"
#include "kernels/Kernels.h"
#include "obs/Event.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/Span.h"
#include "serve/Tool.h"
#include "serve/Worker.h"
#include "support/ParseInt.h"
#include "support/StringUtils.h"

#include <atomic>
#include <chrono>
#include <vector>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

using namespace eco;

namespace {

struct CliOptions {
  std::string Kernel = "matmul";
  std::string Machine = "sgi";
  int64_t N = 160;
  unsigned Scale = 16;
  bool Native = false;
  bool EmitC = false;
  bool VariantsOnly = false;
  bool Trace = false;
  bool Report = false;
  int Jobs = 1;
  std::string CacheFile;
  std::string TraceFile;
  std::string CheckpointFile;
  bool Resume = false;
  std::string MetricsFile;
  std::string ChromeTraceFile;
  std::string EventsFile;
  std::string LogLevel;
  bool Progress = false;
};

/// `eco_cli report EVENTS.jsonl [--html] [--out=F]`: renders a
/// flight-recorder stream as a tune report. Exit 1 when any tune window
/// fails reconciliation against its own tune.done totals.
int reportToolMain(const std::vector<std::string> &Args) {
  std::string Path;
  std::string OutFile;
  bool Html = false;
  for (const std::string &Arg : Args) {
    if (Arg == "--html")
      Html = true;
    else if (Arg.compare(0, 6, "--out=") == 0)
      OutFile = Arg.substr(6);
    else if (!Arg.empty() && Arg[0] != '-' && Path.empty())
      Path = Arg;
    else {
      std::fprintf(stderr,
                   "usage: eco_cli report EVENTS.jsonl [--html] "
                   "[--out=F]\n");
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "usage: eco_cli report EVENTS.jsonl [--html] "
                         "[--out=F]\n");
    return 2;
  }
  std::vector<obs::Event> Events;
  std::string Error;
  std::vector<std::string> LineErrors;
  if (!obs::loadEventsFile(Path, Events, &Error, &LineErrors)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  for (const std::string &E : LineErrors)
    std::fprintf(stderr, "warning: %s\n", E.c_str());
  obs::FlightAnalysis A = obs::analyzeEvents(Events);
  std::string Rendered = Html ? obs::renderHtml(A) : obs::renderMarkdown(A);
  if (OutFile.empty()) {
    std::printf("%s", Rendered.c_str());
  } else {
    std::ofstream Out(OutFile, std::ios::binary | std::ios::trunc);
    Out << Rendered;
    if (!Out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
      return 1;
    }
    std::printf("report written to %s\n", OutFile.c_str());
  }
  bool Ok = true;
  for (const obs::TuneReportData &T : A.Tunes)
    if (T.HasDone && !T.reconciled())
      Ok = false;
  if (!Ok)
    std::fprintf(stderr, "error: event stream does not reconcile with "
                         "the tuner's own totals (see report)\n");
  return Ok ? 0 : 1;
}

/// Background reporter for --progress: once a second prints variant
/// progress, evaluation counts, and an ETA extrapolated from the pace of
/// completed variants — all read from the metrics registry the tune
/// updates as it runs.
class ProgressReporter {
public:
  ProgressReporter() {
    Worker = std::thread([this] { run(); });
  }

  ~ProgressReporter() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stop = true;
    }
    CV.notify_one();
    Worker.join();
    std::fprintf(stderr, "\n");
  }

private:
  void run() {
    auto Start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> Lock(M);
    while (!CV.wait_for(Lock, std::chrono::seconds(1),
                        [this] { return Stop; })) {
      obs::MetricsRegistry &Reg = obs::metrics();
      double Total = Reg.gauge("tune.variants_total").value();
      double Done = Reg.gauge("tune.variants_done").value();
      uint64_t Evals = Reg.counter("eval.evaluations").value();
      uint64_t Hits = Reg.counter("eval.cache_hits").value();
      double Elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
      std::string Eta = "-";
      if (Done > 0 && Total > Done)
        Eta = strformat("%.0fs", Elapsed / Done * (Total - Done));
      std::fprintf(stderr,
                   "\r[eco] variants %.0f/%.0f  evals %llu  hits %llu  "
                   "elapsed %.0fs  eta %s   ",
                   Done, Total, static_cast<unsigned long long>(Evals),
                   static_cast<unsigned long long>(Hits), Elapsed,
                   Eta.c_str());
      std::fflush(stderr);
    }
  }

  std::mutex M;
  std::condition_variable CV;
  bool Stop = false;
  std::thread Worker;
};

bool parseArg(CliOptions &Opts, const std::string &Arg) {
  auto valueOf = [&Arg](const char *Key) -> const char * {
    size_t Len = std::strlen(Key);
    if (Arg.compare(0, Len, Key) == 0)
      return Arg.c_str() + Len;
    return nullptr;
  };
  if (const char *V = valueOf("--kernel=")) {
    Opts.Kernel = V;
    return true;
  }
  if (const char *V = valueOf("--machine=")) {
    Opts.Machine = V;
    return true;
  }
  // Numeric flags parse strictly: "--scale=-1" must be a usage error,
  // not a 2^32 wraparound, and "--n=64x" must not silently mean 64.
  if (const char *V = valueOf("--n=")) {
    int64_t N = 0;
    if (!parseIntInRange(V, 1, int64_t(1) << 30, &N))
      return false;
    Opts.N = N;
    return true;
  }
  if (const char *V = valueOf("--scale=")) {
    int64_t Scale = 0;
    if (!parseIntInRange(V, 1, 1 << 20, &Scale))
      return false;
    Opts.Scale = static_cast<unsigned>(Scale);
    return true;
  }
  if (const char *V = valueOf("--jobs=")) {
    int64_t Jobs = 0;
    if (!parseIntInRange(V, 1, 4096, &Jobs))
      return false;
    Opts.Jobs = static_cast<int>(Jobs);
    return true;
  }
  if (const char *V = valueOf("--cache-file=")) {
    Opts.CacheFile = V;
    return !Opts.CacheFile.empty();
  }
  if (const char *V = valueOf("--trace-file=")) {
    Opts.TraceFile = V;
    return !Opts.TraceFile.empty();
  }
  if (const char *V = valueOf("--checkpoint=")) {
    Opts.CheckpointFile = V;
    return !Opts.CheckpointFile.empty();
  }
  if (const char *V = valueOf("--metrics-file=")) {
    Opts.MetricsFile = V;
    return !Opts.MetricsFile.empty();
  }
  if (const char *V = valueOf("--chrome-trace=")) {
    Opts.ChromeTraceFile = V;
    return !Opts.ChromeTraceFile.empty();
  }
  if (const char *V = valueOf("--events-file=")) {
    Opts.EventsFile = V;
    return !Opts.EventsFile.empty();
  }
  if (const char *V = valueOf("--log-level=")) {
    Opts.LogLevel = V;
    return obs::setLogLevelByName(Opts.LogLevel);
  }
  if (Arg == "--progress") {
    Opts.Progress = true;
    return true;
  }
  if (Arg == "--resume") {
    Opts.Resume = true;
    return true;
  }
  if (Arg == "--native") {
    Opts.Native = true;
    return true;
  }
  if (Arg == "--emit-c") {
    Opts.EmitC = true;
    return true;
  }
  if (Arg == "--variants") {
    Opts.VariantsOnly = true;
    return true;
  }
  if (Arg == "--trace") {
    Opts.Trace = true;
    return true;
  }
  if (Arg == "--report") {
    Opts.Report = true;
    return true;
  }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  // Subcommand spellings of the serving tools: `eco_cli serve` is the
  // eco_served daemon, `eco_cli submit` the client.
  if (Argc > 1 && std::strcmp(Argv[1], "serve") == 0)
    return serve::serveToolMain(
        std::vector<std::string>(Argv + 2, Argv + Argc));
  if (Argc > 1 && std::strcmp(Argv[1], "submit") == 0)
    return serve::submitToolMain(
        std::vector<std::string>(Argv + 2, Argv + Argc));
  if (Argc > 1 && std::strcmp(Argv[1], "worker") == 0)
    return serve::workerToolMain(
        std::vector<std::string>(Argv + 2, Argv + Argc));
  if (Argc > 1 && std::strcmp(Argv[1], "report") == 0)
    return reportToolMain(std::vector<std::string>(Argv + 2, Argv + Argc));

  CliOptions Opts;
  for (int A = 1; A < Argc; ++A) {
    if (!parseArg(Opts, Argv[A])) {
      std::fprintf(stderr,
                   "usage: %s [--kernel=matmul|jacobi|matvec] "
                   "[--machine=sgi|sun|host] [--n=SIZE] [--scale=K] "
                   "[--native] [--emit-c] [--variants] [--trace] "
                   "[--report] [--jobs=N] [--cache-file=F] "
                   "[--trace-file=F] [--checkpoint=F] [--resume] "
                   "[--metrics-file=F] [--chrome-trace=F] "
                   "[--events-file=F] "
                   "[--log-level=off|error|warn|info|debug] "
                   "[--progress]\n       %s report EVENTS.jsonl "
                   "[--html] [--out=F]\n",
                   Argv[0], Argv[0]);
      return 2;
    }
  }
  if (Opts.Resume && Opts.CheckpointFile.empty())
    Opts.CheckpointFile = "eco_checkpoint.json";

  // Observability: metrics feed --metrics-file and the --progress
  // reporter; spans feed --chrome-trace. Both default off (zero cost).
  if (!Opts.MetricsFile.empty() || Opts.Progress)
    obs::setMetricsEnabled(true);
  if (!Opts.ChromeTraceFile.empty())
    obs::SpanCollector::global().setEnabled(true);
  if (!Opts.EventsFile.empty()) {
    if (!obs::EventBus::global().openFile(Opts.EventsFile)) {
      std::fprintf(stderr, "error: cannot open events file %s\n",
                   Opts.EventsFile.c_str());
      return 1;
    }
    obs::setEventsEnabled(true);
  }

  LoopNest Nest;
  if (Opts.Kernel == "matmul")
    Nest = makeMatMul();
  else if (Opts.Kernel == "jacobi")
    Nest = makeJacobi();
  else if (Opts.Kernel == "matvec")
    Nest = makeMatVec();
  else {
    std::fprintf(stderr, "error: unknown kernel '%s'\n",
                 Opts.Kernel.c_str());
    return 2;
  }

  MachineDesc Machine;
  if (Opts.Machine == "sgi")
    Machine = MachineDesc::sgiR10000().scaledBy(Opts.Scale);
  else if (Opts.Machine == "sun")
    Machine = MachineDesc::ultraSparcIIe().scaledBy(Opts.Scale);
  else if (Opts.Machine == "host")
    Machine = MachineDesc::genericHost();
  else {
    std::fprintf(stderr, "error: unknown machine '%s'\n",
                 Opts.Machine.c_str());
    return 2;
  }

  std::printf("kernel %s on %s, N=%lld\n\n%s\n", Opts.Kernel.c_str(),
              Machine.summary().c_str(),
              static_cast<long long>(Opts.N), Nest.print().c_str());

  if (Opts.VariantsOnly) {
    for (const DerivedVariant &V : deriveVariants(Nest, Machine))
      std::printf("%s\n", V.describe().c_str());
    return 0;
  }

  SimEvalBackend SimBackend(Machine);
  NativeEvalBackend NativeBackend(Machine, 2);
  EvalBackend &Backend =
      Opts.Native ? static_cast<EvalBackend &>(NativeBackend)
                  : static_cast<EvalBackend &>(SimBackend);

  // Everything runs through the engine: --jobs controls parallelism,
  // --cache-file persistence, --trace-file structured tracing. The
  // chosen configuration is identical for every --jobs value.
  EngineOptions EOpts;
  EOpts.Jobs = Opts.Jobs;
  EOpts.CacheFile = Opts.CacheFile;
  EOpts.TraceFile = Opts.TraceFile;
  EOpts.TraceAppend = Opts.Resume; // a resumed tune extends its trace
  EvalEngine Engine(Backend, EOpts);
  if (Opts.Jobs > 1 && Engine.jobs() == 1)
    std::fprintf(stderr,
                 "note: backend is not parallelizable; running with 1 "
                 "job\n");

  ParamBindings Problem = {{"N", Opts.N}};
  TuneOptions TOpts;
  std::unique_ptr<TuneCheckpoint> Ckpt;
  if (!Opts.CheckpointFile.empty()) {
    Ckpt = std::make_unique<TuneCheckpoint>(Opts.CheckpointFile, Nest,
                                            Machine, Problem, Opts.Resume);
    Ckpt->installHooks(TOpts);
    if (Opts.Resume && Ckpt->numLoaded() > 0)
      std::printf("resuming: %zu variant(s) restored from %s\n",
                  Ckpt->numLoaded(), Opts.CheckpointFile.c_str());
  }

  TuneResult R;
  {
    std::unique_ptr<ProgressReporter> Progress;
    if (Opts.Progress)
      Progress = std::make_unique<ProgressReporter>();
    R = tune(Nest, Engine, Problem, TOpts);
  }
  Engine.flush();

  if (!Opts.MetricsFile.empty()) {
    if (obs::metrics().toJson().saveFile(Opts.MetricsFile))
      std::printf("metrics dumped to %s\n", Opts.MetricsFile.c_str());
    else
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   Opts.MetricsFile.c_str());
  }
  if (!Opts.EventsFile.empty()) {
    obs::EventBus::global().closeFile();
    std::printf("events streamed to %s (render: eco_cli report %s)\n",
                Opts.EventsFile.c_str(), Opts.EventsFile.c_str());
  }
  if (!Opts.ChromeTraceFile.empty()) {
    if (obs::SpanCollector::global().writeChromeTrace(
            Opts.ChromeTraceFile))
      std::printf("chrome trace written to %s (open in Perfetto or "
                  "chrome://tracing)\n",
                  Opts.ChromeTraceFile.c_str());
    else
      std::fprintf(stderr, "error: cannot write chrome trace to %s\n",
                   Opts.ChromeTraceFile.c_str());
  }

  if (R.BestVariant < 0) {
    std::fprintf(stderr, "error: tuning produced no feasible variant\n");
    return 1;
  }
  // The tune ran to completion: stamp the checkpoint clean so a later
  // --resume knows it restores a full variant set, not a partial one.
  if (Ckpt && !R.Cancelled)
    Ckpt->markComplete();

  if (Opts.Report) {
    ReportOptions ROpts;
    ROpts.CostUnit = Opts.Native ? "seconds" : "cycles";
    std::printf("%s", renderReport(R, Machine, ROpts).c_str());
    return 0;
  }

  std::printf("searched %zu points in %.1fs (%d jobs, %zu cache hits",
              R.TotalPoints, R.TotalSeconds, Engine.jobs(),
              R.TotalCacheHits);
  if (R.TotalPoints + R.TotalCacheHits > 0)
    std::printf(", %.0f%% hit rate",
                100.0 * static_cast<double>(R.TotalCacheHits) /
                    static_cast<double>(R.TotalPoints + R.TotalCacheHits));
  std::printf(")\n");
  for (const VariantSummary &S : R.Summaries)
    std::printf("  %-4s heuristic %.3g %s\n", S.Name.c_str(),
                S.HeuristicCost,
                S.Searched
                    ? strformat("-> best %.3g after %zu points (%s)%s",
                                S.BestCost, S.Points,
                                S.BestConfig.c_str(),
                                S.Restored ? " [restored]" : "")
                          .c_str()
                    : "(pruned by model ranking)");
  std::printf("\nwinner: %s  cost %.6g %s\n",
              R.best().configString(R.BestConfig).c_str(), R.BestCost,
              Opts.Native ? "seconds" : "cycles");
  std::printf("\noptimized code:\n%s", R.BestExecutable.print().c_str());

  if (Opts.EmitC)
    std::printf("\n--- emitted C ---\n%s",
                emitC(R.BestExecutable, "eco_kernel").c_str());

  if (Opts.Trace) {
    // Replay the winning variant's search; with the engine's cache warm
    // this costs almost nothing and dumps the full decision trace.
    VariantSearchResult SR = searchVariant(R.best(), Engine, Problem);
    std::printf("\nconfig,cost\n");
    for (const SearchPoint &P : SR.Trace.Points)
      std::printf("\"%s\",%.6g\n", P.Config.c_str(), P.Cost);
  }
  return 0;
}
