//===- examples/emit_and_run.cpp - Source-to-source, like the paper -------===//
//
// ECO was a source-to-source system: SUIF emitted optimized Fortran that
// the native compiler built. This example does the same on the host:
// derive a variant of Matrix Multiply, print the C it emits, compile it
// with the system compiler, and time it against the naive kernel on the
// real hardware.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "codegen/NativeRunner.h"
#include "core/DeriveVariants.h"
#include "core/Search.h"
#include "kernels/Kernels.h"

#include <cstdio>

using namespace eco;

int main() {
  LoopNest MM = makeMatMul();
  MachineDesc Host = MachineDesc::genericHost();

  // Phase 1, then instantiate the first variant at its model-heuristic
  // configuration.
  std::vector<DerivedVariant> Variants = deriveVariants(MM, Host);
  const DerivedVariant &V = Variants.front();
  const int64_t N = 256;
  Env Cfg = initialConfig(V, Host, {{"N", N}});
  LoopNest Optimized = V.instantiate(Cfg, Host);

  std::printf("emitted C for variant %s:\n%s\n", V.Spec.Name.c_str(),
              emitC(Optimized, "dgemm_opt").c_str());

  // Compile and time both versions natively.
  double Flops = 2.0 * N * N * N;
  NativeRunResult Naive = runNative(MM, {{"N", N}}, Flops);
  if (!Naive.CompileOk) {
    std::printf("host compiler unavailable: %s\n", Naive.Error.c_str());
    return 0;
  }

  ParamBindings Bindings = {{"N", N}};
  for (SymbolId P : V.searchParams())
    Bindings.push_back({Optimized.Syms.name(P), Cfg.get(P)});
  NativeRunResult Opt = runNative(Optimized, Bindings, Flops);

  std::printf("naive:     %7.2f ms  (%.0f MFLOPS)\n", Naive.Seconds * 1e3,
              Naive.Mflops);
  std::printf("optimized: %7.2f ms  (%.0f MFLOPS)  -> %.2fx\n",
              Opt.Seconds * 1e3, Opt.Mflops, Naive.Seconds / Opt.Seconds);
  return 0;
}
